package pcfreduce_test

import (
	"context"
	"math"
	"testing"
	"time"

	"pcfreduce"
)

func inputsFor(g *pcfreduce.Graph) []float64 {
	out := make([]float64, g.N())
	for i := range out {
		out[i] = float64(i%7) + 0.5
	}
	return out
}

func TestReduceAverage(t *testing.T) {
	g := pcfreduce.Hypercube(5)
	in := inputsFor(g)
	res, err := pcfreduce.Reduce(in, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology: g,
		Eps:      1e-13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %.3e", res.MaxError)
	}
	var want float64
	for _, x := range in {
		want += x
	}
	want /= float64(len(in))
	if math.Abs(res.Exact-want) > 1e-12 {
		t.Fatalf("Exact = %.15g, want %.15g", res.Exact, want)
	}
	for i, est := range res.Estimates {
		if math.Abs(est-want)/want > 1e-12 {
			t.Fatalf("node %d estimate %.15g", i, est)
		}
	}
}

func TestReduceSum(t *testing.T) {
	g := pcfreduce.Ring(16)
	in := inputsFor(g)
	res, err := pcfreduce.Reduce(in, pcfreduce.PushFlow, pcfreduce.ReduceOptions{
		Topology:  g,
		Aggregate: pcfreduce.Sum,
		Eps:       1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %.3e", res.MaxError)
	}
	var want float64
	for _, x := range in {
		want += x
	}
	if math.Abs(res.Estimates[7]-want)/want > 1e-11 {
		t.Fatalf("estimate %.15g, want %.15g", res.Estimates[7], want)
	}
}

func TestReduceValidation(t *testing.T) {
	g := pcfreduce.Path(4)
	if _, err := pcfreduce.Reduce([]float64{1, 2, 3, 4}, pcfreduce.PCF, pcfreduce.ReduceOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := pcfreduce.Reduce([]float64{1, 2}, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("wrong input length accepted")
	}
	disconnected := pcfreduce.Grid2D(1, 1)
	_ = disconnected
	two := pcfreduce.Path(2).RemoveEdge(0, 1)
	if _, err := pcfreduce.Reduce([]float64{1, 2}, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: two}); err == nil {
		t.Fatal("disconnected topology accepted")
	}
}

func TestReduceWithFaults(t *testing.T) {
	g := pcfreduce.Hypercube(5)
	in := inputsFor(g)
	var traced int
	res, err := pcfreduce.Reduce(in, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology:     g,
		Eps:          1e-12,
		MaxRounds:    5000,
		LossRate:     0.05,
		LinkFailures: []pcfreduce.LinkFailure{{Round: 30, A: 0, B: 1}},
		NodeCrashes:  []pcfreduce.NodeCrash{{Round: 0, Node: 9}},
		Trace:        func(round int, maxErr float64) { traced++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged under faults: %.3e", res.MaxError)
	}
	if traced != res.Rounds {
		t.Fatalf("trace called %d times for %d rounds", traced, res.Rounds)
	}
	if !math.IsNaN(res.Estimates[9]) {
		t.Fatal("crashed node must report NaN")
	}
	// With node 9 crashed at round 0, Exact is the survivors' average.
	var want float64
	for i, x := range in {
		if i != 9 {
			want += x
		}
	}
	want /= float64(len(in) - 1)
	if math.Abs(res.Exact-want) > 1e-12 {
		t.Fatalf("Exact = %.15g, want survivors' %.15g", res.Exact, want)
	}
}

func TestReduceDeterminism(t *testing.T) {
	g := pcfreduce.Torus2D(4, 4)
	in := inputsFor(g)
	opt := pcfreduce.ReduceOptions{Topology: g, Seed: 42, MaxRounds: 60, Eps: 1e-300}
	a, err := pcfreduce.Reduce(in, pcfreduce.PCF, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pcfreduce.Reduce(in, pcfreduce.PCF, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[pcfreduce.Algorithm]string{
		pcfreduce.PCF:          "PCF",
		pcfreduce.PCFRobust:    "PCF-robust",
		pcfreduce.PushFlow:     "push-flow",
		pcfreduce.PushSum:      "push-sum",
		pcfreduce.FlowUpdating: "flow-updating",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%v", a)
		}
		if a.NewNode() == nil {
			t.Fatalf("%v: nil node", a)
		}
	}
}

func TestReduceConcurrent(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	in := inputsFor(g)
	res, err := pcfreduce.ReduceConcurrent(context.Background(), in, pcfreduce.PCF, pcfreduce.ConcurrentOptions{
		Topology: g,
		Eps:      1e-9,
		Timeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %.3e", res.MaxError)
	}
	if math.Abs(res.Estimates[3]-res.Exact)/res.Exact > 1e-8 {
		t.Fatalf("estimate %.12g vs exact %.12g", res.Estimates[3], res.Exact)
	}
}

func TestReduceConcurrentValidation(t *testing.T) {
	if _, err := pcfreduce.ReduceConcurrent(context.Background(), nil, pcfreduce.PCF, pcfreduce.ConcurrentOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	g := pcfreduce.Ring(4)
	if _, err := pcfreduce.ReduceConcurrent(context.Background(), []float64{1}, pcfreduce.PCF, pcfreduce.ConcurrentOptions{Topology: g}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestQRFacade(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	v := pcfreduce.RandomMatrix(16, 5, 7)
	res, err := pcfreduce.QR(v, pcfreduce.PCF, pcfreduce.QROptions{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	if res.FactorizationError > 1e-12 {
		t.Fatalf("factorization error %.3e", res.FactorizationError)
	}
	if res.OrthogonalityError > 1e-12 {
		t.Fatalf("orthogonality error %.3e", res.OrthogonalityError)
	}
	if res.Reductions != 9 || res.TotalRounds <= 0 {
		t.Fatalf("work counters %+v", res)
	}
	if res.Q.Rows != 16 || res.Q.Cols != 5 || res.R.Rows != 5 {
		t.Fatal("factor shapes")
	}
	if _, err := pcfreduce.QR(v, pcfreduce.PCF, pcfreduce.QROptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestNewMatrixHelpers(t *testing.T) {
	m := pcfreduce.NewMatrix(2, 2)
	if m.Rows != 2 || m.At(1, 1) != 0 {
		t.Fatal("NewMatrix")
	}
	r := pcfreduce.RandomMatrix(3, 3, 1)
	if r.Rows != 3 || r.MaxAbs() == 0 {
		t.Fatal("RandomMatrix")
	}
}

func TestEigenFacade(t *testing.T) {
	g := pcfreduce.Hypercube(3)
	n := g.N()
	// Diagonal-dominant symmetric matrix with a clear dominant pair.
	a := pcfreduce.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	a.Set(0, 0, 12)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	res, err := pcfreduce.Eigen(a, pcfreduce.PCF, pcfreduce.EigenOptions{
		Topology:     g,
		Eigenvectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged after %d iterations", res.Iterations)
	}
	// Dominant eigenvalue of the 2x2 block [[12,2],[2,1]] ⊕ I:
	// (13 + sqrt(121+16))/2.
	want := (13 + math.Sqrt(137)) / 2
	if math.Abs(res.Values[0]-want) > 1e-8 {
		t.Fatalf("λ1 = %.12g, want %.12g", res.Values[0], want)
	}
	if _, err := pcfreduce.Eigen(a, pcfreduce.PCF, pcfreduce.EigenOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestWeightedReduce(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	n := g.N()
	inputs := make([]float64, n)
	weights := make([]float64, n)
	var num, den float64
	for i := range inputs {
		inputs[i] = float64(i)
		weights[i] = float64(i%3) + 0.5
		num += weights[i] * inputs[i]
		den += weights[i]
	}
	res, err := pcfreduce.WeightedReduce(inputs, weights, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology: g,
		Eps:      1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := num / den
	if math.Abs(res.Exact-want) > 1e-12 {
		t.Fatalf("Exact = %.15g, want %.15g", res.Exact, want)
	}
	if !res.Converged {
		t.Fatalf("not converged: %.3e", res.MaxError)
	}
	if math.Abs(res.Estimates[7]-want)/want > 1e-11 {
		t.Fatalf("estimate %.15g", res.Estimates[7])
	}
	// Validation.
	if _, err := pcfreduce.WeightedReduce(inputs, weights[:3], pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	weights[2] = 0
	if _, err := pcfreduce.WeightedReduce(inputs, weights, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// Reduce with Shards set runs on the sharded executor: converged result,
// byte-identical across shard counts, and negative counts rejected.
func TestReduceSharded(t *testing.T) {
	g := pcfreduce.Hypercube(5)
	in := inputsFor(g)
	run := func(shards int) pcfreduce.ReduceResult {
		res, err := pcfreduce.Reduce(in, pcfreduce.PCF, pcfreduce.ReduceOptions{
			Topology: g,
			Eps:      1e-13,
			Shards:   shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("shards=%d not converged: %.3e", shards, res.MaxError)
		}
		return res
	}
	ref := run(1)
	for _, p := range []int{2, 8} {
		got := run(p)
		if got.Rounds != ref.Rounds {
			t.Fatalf("shards=%d took %d rounds, shards=1 took %d", p, got.Rounds, ref.Rounds)
		}
		for i := range ref.Estimates {
			if math.Float64bits(got.Estimates[i]) != math.Float64bits(ref.Estimates[i]) {
				t.Fatalf("shards=%d node %d estimate differs from shards=1", p, i)
			}
		}
	}
	if _, err := pcfreduce.Reduce(in, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology: g,
		Shards:   -2,
	}); err == nil {
		t.Fatal("negative Shards accepted")
	}
}

// ReduceBatch with k=1 must be bit-identical to Reduce: the batched path
// is a strict generalization, not a parallel implementation with its own
// numerics.
func TestReduceBatchWidthOneBitwise(t *testing.T) {
	g := pcfreduce.Hypercube(5)
	in := inputsFor(g)
	scalar, err := pcfreduce.Reduce(in, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g, Eps: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([][]float64, len(in))
	for i, x := range in {
		vec[i] = []float64{x}
	}
	batch, err := pcfreduce.ReduceBatch(vec, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g, Eps: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Rounds != scalar.Rounds || batch.Converged != scalar.Converged || batch.MaxError != scalar.MaxError {
		t.Fatalf("k=1 batch diverges from scalar: %+v vs %+v", batch, scalar)
	}
	for i := range in {
		if batch.Estimates[i][0] != scalar.Estimates[i] {
			t.Fatalf("node %d: batch %.17g, scalar %.17g", i, batch.Estimates[i][0], scalar.Estimates[i])
		}
	}
	if batch.Exact[0] != scalar.Exact {
		t.Fatalf("exact: %.17g vs %.17g", batch.Exact[0], scalar.Exact)
	}
}

// k aggregates in one run: every component converges to its own exact
// value, in no more rounds than one scalar reduction of the hardest
// component would take times a small constant — NOT k times.
func TestReduceBatchManyAggregates(t *testing.T) {
	g := pcfreduce.Hypercube(5)
	n := g.N()
	const k = 16
	vec := make([][]float64, n)
	for i := range vec {
		vec[i] = make([]float64, k)
		for c := 0; c < k; c++ {
			vec[i][c] = float64((i*(c+1))%13) + 0.25*float64(c+1)
		}
	}
	scalarRounds := 0
	for c := 0; c < k; c++ {
		comp := make([]float64, n)
		for i := range comp {
			comp[i] = vec[i][c]
		}
		res, err := pcfreduce.Reduce(comp, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g, Eps: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		scalarRounds += res.Rounds
	}
	batch, err := pcfreduce.ReduceBatch(vec, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g, Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Converged {
		t.Fatalf("batch did not converge: %.3e", batch.MaxError)
	}
	for c := 0; c < k; c++ {
		var want float64
		for i := range vec {
			want += vec[i][c]
		}
		want /= float64(n)
		if math.Abs(batch.Exact[c]-want) > 1e-11*math.Abs(want) {
			t.Fatalf("component %d: Exact=%.15g, want %.15g", c, batch.Exact[c], want)
		}
		for i := range vec {
			if math.Abs(batch.Estimates[i][c]-want) > 1e-10*math.Abs(want) {
				t.Fatalf("component %d node %d: %.15g, want %.15g", c, i, batch.Estimates[i][c], want)
			}
		}
	}
	// The batching claim: k aggregates cost ~1 reduction's rounds, so the
	// k-run scalar total must dwarf the single batched run.
	if 4*batch.Rounds >= scalarRounds {
		t.Fatalf("batched %d rounds vs %d total scalar rounds — no batching win", batch.Rounds, scalarRounds)
	}
}

// ReduceBatch under faults: a crashed node reports NaNs, and every
// batch component is bitwise equal to a scalar Reduce of that component
// under the identical fault plan — the schedule is width-independent
// and the protocols act component-wise.
func TestReduceBatchWithCrash(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	n := g.N()
	vec := make([][]float64, n)
	for i := range vec {
		vec[i] = []float64{float64(i) + 1, 2 * float64(i)}
	}
	opt := pcfreduce.ReduceOptions{
		Topology:    g,
		Eps:         1e-12,
		NodeCrashes: []pcfreduce.NodeCrash{{Round: 5, Node: 3}},
	}
	batch, err := pcfreduce.ReduceBatch(vec, pcfreduce.PCF, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(batch.Estimates[3][0]) || !math.IsNaN(batch.Estimates[3][1]) {
		t.Fatal("crashed node should report NaN estimates")
	}
	for c := 0; c < 2; c++ {
		comp := make([]float64, n)
		for i := range comp {
			comp[i] = vec[i][c]
		}
		scalar, err := pcfreduce.Reduce(comp, pcfreduce.PCF, opt)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Exact[c] != scalar.Exact || batch.Rounds != scalar.Rounds {
			t.Fatalf("component %d: exact/rounds diverge from scalar", c)
		}
		for i := range comp {
			if i == 3 {
				continue
			}
			if batch.Estimates[i][c] != scalar.Estimates[i] {
				t.Fatalf("component %d node %d: batch %.17g, scalar %.17g", c, i, batch.Estimates[i][c], scalar.Estimates[i])
			}
		}
	}
}

func TestReduceBatchValidation(t *testing.T) {
	g := pcfreduce.Path(4)
	ok := [][]float64{{1}, {2}, {3}, {4}}
	if _, err := pcfreduce.ReduceBatch(ok, pcfreduce.PCF, pcfreduce.ReduceOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := pcfreduce.ReduceBatch(ok[:2], pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("wrong input length accepted")
	}
	if _, err := pcfreduce.ReduceBatch([][]float64{{1}, {2}, {3, 9}, {4}}, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("ragged widths accepted")
	}
	if _, err := pcfreduce.ReduceBatch([][]float64{{}, {}, {}, {}}, pcfreduce.PCF, pcfreduce.ReduceOptions{Topology: g}); err == nil {
		t.Fatal("zero width accepted")
	}
}

// The cache-aware layout changes nothing but locality: byte-identical
// estimates, rounds and error to the contiguous sharded run.
func TestReduceCacheAwareByteIdentical(t *testing.T) {
	g := pcfreduce.Grid2D(8, 8)
	in := inputsFor(g)
	base := pcfreduce.ReduceOptions{Topology: g, Eps: 1e-13, Shards: 4}
	contig, err := pcfreduce.Reduce(in, pcfreduce.PCF, base)
	if err != nil {
		t.Fatal(err)
	}
	ca := base
	ca.CacheAware = true
	got, err := pcfreduce.Reduce(in, pcfreduce.PCF, ca)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != contig.Rounds || got.MaxError != contig.MaxError {
		t.Fatalf("cache-aware run diverges: %+v vs %+v", got, contig)
	}
	for i := range got.Estimates {
		if got.Estimates[i] != contig.Estimates[i] {
			t.Fatalf("node %d: %.17g vs %.17g", i, got.Estimates[i], contig.Estimates[i])
		}
	}
}

// Batched QR: m reductions instead of 2m−1, fewer total rounds, same
// factorization quality.
func TestQRBatched(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	v := pcfreduce.RandomMatrix(16, 6, 3)
	legacy, err := pcfreduce.QR(v, pcfreduce.PCF, pcfreduce.QROptions{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := pcfreduce.QR(v, pcfreduce.PCF, pcfreduce.QROptions{Topology: g, Batched: true, Shards: 2, CacheAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Reductions != 11 || batched.Reductions != 6 {
		t.Fatalf("reductions: legacy %d (want 11), batched %d (want 6)", legacy.Reductions, batched.Reductions)
	}
	if batched.TotalRounds >= legacy.TotalRounds {
		t.Fatalf("batched QR did not cut rounds: %d vs %d", batched.TotalRounds, legacy.TotalRounds)
	}
	if batched.FactorizationError > 1e-12 || batched.OrthogonalityError > 1e-12 {
		t.Fatalf("batched QR quality: fe=%.3e oe=%.3e", batched.FactorizationError, batched.OrthogonalityError)
	}
}

// Sensor fusion under faults: a 16×16 grid of sensors computes the mean
// of its readings while 5% of messages are lost, one network link breaks
// permanently, and one sensor dies mid-computation.
//
// This is the scenario class the paper's introduction targets: loosely
// coupled systems whose reductions must be robust at the algorithmic
// level. The example contrasts push-sum (which the soft errors corrupt
// permanently) with push-cancel-flow (which self-heals and keeps
// converging).
//
//	go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pcfreduce"
)

// spread returns the gap between the largest and smallest finite
// estimates — how well the surviving network agrees with itself.
func spread(ests []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range ests {
		if math.IsNaN(e) {
			continue // crashed node
		}
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	return hi - lo
}

func main() {
	const side = 16
	g := pcfreduce.Grid2D(side, side) // 256 sensors, mesh network
	n := g.N()

	// Simulated readings: a smooth field plus noise.
	rng := rand.New(rand.NewSource(7))
	inputs := make([]float64, n)
	for i := range inputs {
		r, c := i/side, i%side
		inputs[i] = 15 + 0.05*float64(r) - 0.03*float64(c) + 0.5*rng.NormFloat64()
	}

	scenario := func(algo pcfreduce.Algorithm) pcfreduce.ReduceResult {
		res, err := pcfreduce.Reduce(inputs, algo, pcfreduce.ReduceOptions{
			Topology:  g,
			Aggregate: pcfreduce.Average,
			Eps:       1e-10,
			MaxRounds: 6000,
			Seed:      1,
			LossRate:  0.05, // 5% of messages vanish
			LinkFailures: []pcfreduce.LinkFailure{
				{Round: 300, A: 0, B: 1}, // a cable breaks in the corner
			},
			NodeCrashes: []pcfreduce.NodeCrash{
				{Round: 600, Node: 137}, // a sensor dies mid-computation
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("256 sensors on a %dx%d mesh; 5%% message loss; link (0,1) breaks at round 300; sensor 137 dies at round 600\n\n", side, side)
	for _, algo := range []pcfreduce.Algorithm{pcfreduce.PushSum, pcfreduce.PCF} {
		res := scenario(algo)
		fmt.Printf("%-12s rounds=%5d error vs survivors' mean=%.3e agreement spread=%.3e\n",
			algo.String()+":", res.Rounds, res.MaxError, spread(res.Estimates))
		fmt.Printf("             survivors' true mean %.9f, sensor 42 estimates %.9f\n\n",
			res.Exact, res.Estimates[42])
	}
	fmt.Println("both networks agree internally — but push-sum agrees on a value ~1e-3")
	fmt.Println("off the true mean, because every message destroyed by the lossy links")
	fmt.Println("permanently removed mass it cannot recover. PCF heals every lost")
	fmt.Println("message and both permanent failures; its only residual offset (~1e-5)")
	fmt.Println("is the mass the dead sensor had already absorbed when it crashed,")
	fmt.Println("which no algorithm can get back.")
}

// Concurrent execution: the same reduction protocols running as a real
// concurrent system — one goroutine per node, bounded channel inboxes,
// no synchronization of any kind — rather than in the deterministic
// round simulator. Messages are reordered by the scheduler and dropped
// under back-pressure; the flow-based algorithms converge anyway.
//
//	go run ./examples/concurrent
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pcfreduce"
)

func main() {
	g := pcfreduce.RandomRegular(128, 4, 11) // 128 goroutine-nodes, degree 4
	rng := rand.New(rand.NewSource(5))
	inputs := make([]float64, g.N())
	for i := range inputs {
		inputs[i] = 100 * rng.Float64()
	}

	fmt.Printf("%d nodes as goroutines on a random 4-regular overlay\n\n", g.N())
	for _, algo := range []pcfreduce.Algorithm{pcfreduce.PCF, pcfreduce.PCFRobust, pcfreduce.PushFlow} {
		start := time.Now()
		res, err := pcfreduce.ReduceConcurrent(context.Background(), inputs, algo, pcfreduce.ConcurrentOptions{
			Topology:  g,
			Aggregate: pcfreduce.Average,
			Eps:       1e-9,
			Timeout:   15 * time.Second,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s converged=%-5v in %-8v max err %.2e  (exact %.6f, node 17 says %.6f)\n",
			algo.String()+":", res.Converged, time.Since(start).Round(time.Millisecond),
			res.MaxError, res.Exact, res.Estimates[17])
	}
}

// Quickstart: compute a global average with the push-cancel-flow (PCF)
// reduction on a 6-dimensional hypercube of 64 nodes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pcfreduce"
)

func main() {
	// 64 nodes, each holding one local measurement.
	g := pcfreduce.Hypercube(6)
	rng := rand.New(rand.NewSource(42))
	inputs := make([]float64, g.N())
	for i := range inputs {
		inputs[i] = 20 + 5*rng.Float64() // e.g. temperatures around 20–25
	}

	// Run the gossip reduction: no coordinator, no synchronization —
	// every node repeatedly pushes flow updates to one random neighbor.
	res, err := pcfreduce.Reduce(inputs, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology:  g,
		Aggregate: pcfreduce.Average,
		Eps:       1e-12, // stop when every node is this accurate
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exact average:            %.12f\n", res.Exact)
	fmt.Printf("node 0's estimate:        %.12f\n", res.Estimates[0])
	fmt.Printf("node 63's estimate:       %.12f\n", res.Estimates[63])
	fmt.Printf("rounds: %d, converged: %v, max relative error: %.2e\n",
		res.Rounds, res.Converged, res.MaxError)

	// The same reduction as a SUM instead of an average.
	sum, err := pcfreduce.Reduce(inputs, pcfreduce.PCF, pcfreduce.ReduceOptions{
		Topology:  g,
		Aggregate: pcfreduce.Sum,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact sum: %.9f — node 7 estimates %.9f\n", sum.Exact, sum.Estimates[7])
}

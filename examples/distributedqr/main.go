// Distributed QR factorization (the paper's Section IV): factor a
// 256×12 matrix whose rows live on the 256 nodes of an 8-dimensional
// hypercube, using gossip reductions for every norm and dot product —
// first with push-flow, then with push-cancel-flow — and compare the
// factorization quality, reproducing the paper's Fig. 8 observation at
// a single size.
//
//	go run ./examples/distributedqr
package main

import (
	"fmt"
	"log"

	"pcfreduce"
)

func main() {
	const (
		dim  = 8  // hypercube dimension: 256 nodes, one matrix row each
		cols = 12 // m: columns to orthogonalize
	)
	g := pcfreduce.Hypercube(dim)
	v := pcfreduce.RandomMatrix(g.N(), cols, 99)

	fmt.Printf("dmGS: QR of a %dx%d matrix distributed over %d nodes (hypercube)\n",
		v.Rows, v.Cols, g.N())
	fmt.Printf("per-reduction target accuracy 1e-15 (the paper's setting)\n\n")

	for _, algo := range []pcfreduce.Algorithm{pcfreduce.PushFlow, pcfreduce.PCF} {
		res, err := pcfreduce.QR(v, algo, pcfreduce.QROptions{Topology: g})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dmGS(%s):\n", algo)
		fmt.Printf("  ‖V − QR‖∞/‖V‖∞  = %.3e\n", res.FactorizationError)
		fmt.Printf("  ‖QᵀQ − I‖∞      = %.3e\n", res.OrthogonalityError)
		fmt.Printf("  gossip work: %d reductions, %d rounds total\n\n",
			res.Reductions, res.TotalRounds)
	}
	fmt.Println("R (top-left corner, node 0's copy):")
	resPCF, err := pcfreduce.QR(v, pcfreduce.PCF, pcfreduce.QROptions{Topology: g})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			fmt.Printf("%10.5f", resPCF.R.At(i, j))
		}
		fmt.Println()
	}
}

// Live monitoring: a network continuously tracks the average of inputs
// that keep changing — the LiMoSense use case referenced by the paper —
// while 5% of messages are lost. The flow-based reduction never
// restarts: each input change simply shifts local mass and the gossip
// re-averages it.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"pcfreduce"
)

func main() {
	g := pcfreduce.Torus2D(8, 8) // 64 nodes on a torus
	rng := rand.New(rand.NewSource(11))
	inputs := make([]float64, g.N())
	for i := range inputs {
		inputs[i] = 50 + 10*rng.NormFloat64()
	}

	s, err := pcfreduce.NewSession(inputs, pcfreduce.PCF, pcfreduce.SessionOptions{
		Topology: g,
		LossRate: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("64 sensors tracking a drifting mean under 5% message loss")
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "round", "true mean", "node 0 sees", "lag")
	for epoch := 0; epoch < 12; epoch++ {
		// The world changes: a few sensors get new readings.
		for k := 0; k < 3; k++ {
			node := rng.Intn(g.N())
			inputs[node] += 5 * rng.NormFloat64()
			s.UpdateInput(node, inputs[node])
		}
		// The network gossips for a while.
		s.Step(40)
		est := s.Estimates()[0]
		lag := math.Abs(est-s.Exact()) / s.Exact()
		fmt.Printf("%-8d %-12.6f %-12.6f %s %.1e\n",
			s.Rounds(), s.Exact(), est, gauge(lag), lag)
	}
	fmt.Println("\nevery epoch the inputs move and the estimates follow within a few")
	fmt.Println("dozen rounds — no restart, no coordinator, loss healed by the flows")
}

// gauge renders a tracking-lag magnitude bar (shorter = tighter).
func gauge(lag float64) string {
	decades := 0
	for x := lag; x < 1 && decades < 12; x *= 10 {
		decades++
	}
	return strings.Repeat("▪", 13-decades)
}

// Distributed eigensolver: compute the dominant eigenpairs of a
// symmetric matrix with fully distributed orthogonal iteration, where
// the only global operations are gossip reductions (the higher-level
// application direction of the paper's reference [9]).
//
//	go run ./examples/eigensolver
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pcfreduce"
)

func main() {
	g := pcfreduce.Hypercube(5) // 32 nodes → a 32×32 symmetric matrix
	n := g.N()

	// A covariance-style matrix (distributed PCA workload): three strong
	// factors with strengths 30, 20, 10 plus weak symmetric noise, so
	// the dominant eigenpairs are well separated and meaningful.
	rng := rand.New(rand.NewSource(17))
	a := pcfreduce.NewMatrix(n, n)
	strengths := []float64{30, 20, 10}
	factors := make([][]float64, len(strengths))
	for f := range factors {
		u := make([]float64, n)
		var norm float64
		for i := range u {
			u[i] = rng.NormFloat64()
			norm += u[i] * u[i]
		}
		norm = math.Sqrt(norm)
		for i := range u {
			u[i] /= norm
		}
		factors[f] = u
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 0.0
			for f, s := range strengths {
				v += s * factors[f][i] * factors[f][j]
			}
			if i == j {
				v += 0.5 // noise floor
			}
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}

	res, err := pcfreduce.Eigen(a, pcfreduce.PCF, pcfreduce.EigenOptions{
		Topology:     g,
		Eigenvectors: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed orthogonal iteration on %d goroutine-sized nodes\n", n)
	fmt.Printf("converged=%v after %d iterations\n\n", res.Converged, res.Iterations)
	for j, lam := range res.Values {
		fmt.Printf("λ%d = %.12f\n", j+1, lam)
	}

	// Verify one residual locally: ‖A·v − λ·v‖₂.
	v0 := res.Vectors.Col(0)
	var resid float64
	for i := 0; i < n; i++ {
		var av float64
		for k := 0; k < n; k++ {
			av += a.At(i, k) * v0[k]
		}
		d := av - res.Values[0]*v0[i]
		resid += d * d
	}
	fmt.Printf("\nresidual ‖A·v₁ − λ₁·v₁‖₂ = %.3e\n", math.Sqrt(resid))
}

// Link failure side by side (the paper's Figs. 4 and 7): run push-flow
// and push-cancel-flow on identical communication schedules, break one
// link at iteration 100, and print the two error traces next to each
// other. PF falls back to the beginning of the computation; PCF sails
// through.
//
//	go run ./examples/linkfailure
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"pcfreduce"
)

const (
	failAt = 100
	rounds = 220
)

func main() {
	g := pcfreduce.Hypercube(6)
	rng := rand.New(rand.NewSource(3))
	inputs := make([]float64, g.N())
	for i := range inputs {
		inputs[i] = rng.Float64()
	}

	traceOf := func(algo pcfreduce.Algorithm) []float64 {
		trace := make([]float64, rounds)
		_, err := pcfreduce.Reduce(inputs, algo, pcfreduce.ReduceOptions{
			Topology:     g,
			Aggregate:    pcfreduce.Average,
			MaxRounds:    rounds,
			Eps:          1e-300, // never stop early: we want the full trace
			Seed:         1,      // same seed → identical schedules
			LinkFailures: []pcfreduce.LinkFailure{{Round: failAt, A: 0, B: 1}},
			Trace:        func(round int, maxErr float64) { trace[round-1] = maxErr },
		})
		if err != nil {
			log.Fatal(err)
		}
		return trace
	}

	pf := traceOf(pcfreduce.PushFlow)
	pcf := traceOf(pcfreduce.PCF)

	fmt.Printf("single permanent link failure at iteration %d (64-node hypercube)\n", failAt)
	fmt.Printf("%-10s  %-28s  %-28s\n", "iteration", "push-flow max error", "PCF max error")
	for r := 9; r < rounds; r += 10 {
		marker := ""
		if r+1 > failAt && r+1 <= failAt+10 {
			marker = "   <- link (0,1) failed"
		}
		fmt.Printf("%-10d  %-28s  %-28s%s\n", r+1, bar(pf[r]), bar(pcf[r]), marker)
	}
	fmt.Println("\nbars show log10 of the maximal local error, from 1e0 down to 1e-16")
}

// bar renders err as a left-aligned logarithmic bar: longer = closer to
// machine precision.
func bar(err float64) string {
	const width = 16 // decades from 1e0 to 1e-16
	decades := 0
	for e := err; e < 1 && decades < width; e *= 10 {
		decades++
	}
	return strings.Repeat("#", decades) + fmt.Sprintf(" %.1e", err)
}

// Package pcfreduce is a fault-tolerant distributed reduction library: a
// from-scratch Go implementation of the push-cancel-flow (PCF) algorithm
// of Niederbrucker, Straková and Gansterer ("Improving Fault Tolerance
// and Accuracy of a Distributed Reduction Algorithm", SC 2012), together
// with the gossip algorithms it builds on and competes with (push-sum,
// push-flow, flow-updating), a deterministic round simulator, a
// concurrent goroutine runtime, fault injection, and a fully distributed
// QR factorization (dmGS) built on top of the reductions.
//
// # Quick start
//
//	g := pcfreduce.Hypercube(6)                    // 64 nodes
//	res, err := pcfreduce.Reduce(inputs, pcfreduce.PCF, pcfreduce.ReduceOptions{
//		Topology:  g,
//		Aggregate: pcfreduce.Average,
//		Eps:       1e-15,
//	})
//	// res.Estimates[i] is node i's estimate of the global average.
//
// # Choosing an algorithm
//
//   - PCF (default choice): reaches machine precision at any scale and
//     recovers from permanent link/node failures without convergence
//     fall-back. Use PCFRobust when in-flight payload corruption (bit
//     flips) must be tolerated with minimal disturbance.
//   - PushFlow: the predecessor algorithm; same failure model, but its
//     accuracy degrades with system size and failure handling restarts
//     convergence.
//   - PushSum: fastest and simplest, but any lost message permanently
//     corrupts the result; only for reliable transports.
//   - FlowUpdating: an alternative flow-based method (Jesus et al.),
//     averaging-style dynamics.
//
// The deeper API — protocol state machines, the round engine, fault
// injectors, the concurrent runtime, and the experiment harnesses that
// regenerate every figure of the paper — lives in the internal packages
// and is exercised by the binaries in cmd/ and the examples in
// examples/.
package pcfreduce

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"pcfreduce/internal/core"
	"pcfreduce/internal/dmgs"
	"pcfreduce/internal/eigen"
	"pcfreduce/internal/fault"
	"pcfreduce/internal/flowupdate"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/linalg"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/pushflow"
	"pcfreduce/internal/pushsum"
	"pcfreduce/internal/runtime"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// Graph is a network topology (re-exported from the topology package).
type Graph = topology.Graph

// Convenient topology constructors.
var (
	// Hypercube returns the d-dimensional hypercube on 2^d nodes.
	Hypercube = topology.Hypercube
	// Torus3D returns an a×b×c torus.
	Torus3D = topology.Torus3D
	// Torus2D returns an a×b torus.
	Torus2D = topology.Torus2D
	// Path returns the n-node bus/line network.
	Path = topology.Path
	// Ring returns the n-node cycle.
	Ring = topology.Ring
	// Complete returns the fully connected n-node graph.
	Complete = topology.Complete
	// Grid2D returns a rows×cols mesh.
	Grid2D = topology.Grid2D
	// RandomRegular returns a seeded random d-regular graph.
	RandomRegular = topology.RandomRegular
	// WattsStrogatz returns a seeded small-world graph.
	WattsStrogatz = topology.WattsStrogatz
)

// Partition is an explicit node→shard assignment for the sharded
// executor (re-exported from the topology package).
type Partition = topology.Partition

// PartitionStats summarizes a partition: shard sizes and the number of
// topology edges crossing shard boundaries (the cross-shard traffic the
// cache-aware layout minimizes).
type PartitionStats = topology.PartitionStats

// Partition constructors.
var (
	// ContiguousPartition splits node ids into p contiguous blocks.
	ContiguousPartition = topology.Contiguous
	// CacheAwarePartition grows p balanced shards along topology edges
	// (deterministic BFS), minimizing cut edges; it never cuts more
	// edges than ContiguousPartition. Results of a reduction are
	// byte-identical under any partition — only locality changes.
	CacheAwarePartition = topology.CacheAware
)

// Aggregate selects the reduction target.
type Aggregate = gossip.Aggregate

// Aggregate kinds.
const (
	// Sum computes Σ xᵢ.
	Sum = gossip.Sum
	// Average computes (Σ xᵢ)/n.
	Average = gossip.Average
)

// Protocol is the node-local reduction state machine interface; advanced
// users can implement their own and drive it with the same engines.
type Protocol = gossip.Protocol

// MetricsRecorder is the zero-overhead observability recorder
// (re-exported from internal/metrics): per-shard counter banks, invariant
// probes sampled every K rounds, and a fixed-capacity trace-event ring.
// Attach one per run via ReduceOptions.Metrics or
// ConcurrentOptions.Metrics; a nil recorder costs nothing.
type MetricsRecorder = metrics.Recorder

// MetricsConfig configures NewMetrics.
type MetricsConfig = metrics.Config

// MetricsSample is one invariant-probe sample (error quantiles, mass
// residual, in-flight weight, anti-symmetry violations, counters).
type MetricsSample = metrics.Sample

// TraceEvent is one entry of the recorder's trace ring (fault injected,
// link evicted, node reintegrated, convergence epoch crossed, ...).
type TraceEvent = metrics.Event

// NewMetrics constructs a metrics recorder.
var NewMetrics = metrics.New

// Value is the (data vector, weight) pair all protocols exchange.
type Value = gossip.Value

// Algorithm identifies one of the built-in reduction algorithms.
type Algorithm int

// The built-in reduction algorithms.
const (
	// PCF is the push-cancel-flow algorithm (the paper's contribution)
	// in its computationally efficient form (paper Fig. 5).
	PCF Algorithm = iota
	// PCFRobust is push-cancel-flow in the bit-flip-tolerant form
	// (paper Sec. III-A).
	PCFRobust
	// PushFlow is the predecessor push-flow algorithm (paper Fig. 1).
	PushFlow
	// PushSum is the classic non-fault-tolerant gossip aggregation
	// (Kempe et al., FOCS 2003).
	PushSum
	// FlowUpdating is the Flow Updating algorithm (Jesus et al.,
	// DAIS 2009).
	FlowUpdating
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case PCF:
		return "PCF"
	case PCFRobust:
		return "PCF-robust"
	case PushFlow:
		return "push-flow"
	case PushSum:
		return "push-sum"
	case FlowUpdating:
		return "flow-updating"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// NewNode constructs one protocol instance (one per network node).
func (a Algorithm) NewNode() Protocol {
	switch a {
	case PCF:
		return core.NewEfficient()
	case PCFRobust:
		return core.NewRobust()
	case PushFlow:
		return pushflow.New()
	case PushSum:
		return pushsum.New()
	case FlowUpdating:
		return flowupdate.New()
	default:
		panic("pcfreduce: unknown algorithm")
	}
}

// ReduceOptions configures Reduce.
type ReduceOptions struct {
	// Topology is the gossip network (required, connected).
	Topology *Graph
	// Aggregate selects Sum or Average (default Average).
	Aggregate Aggregate
	// Eps is the target maximal relative local error (default 1e-12).
	Eps float64
	// MaxRounds caps the computation (default 500·log2(n)+2000).
	MaxRounds int
	// Seed makes the randomized schedule reproducible (default 1).
	Seed int64
	// LossRate, when > 0, drops each message independently with this
	// probability (seeded).
	LossRate float64
	// LinkFailures schedules permanent link failures: at the given
	// round both endpoints are notified and stop using the link.
	LinkFailures []LinkFailure
	// NodeCrashes schedules permanent node failures: all the node's
	// links fail and it stops participating. The reported Exact value
	// and errors then refer to the aggregate over the survivors.
	NodeCrashes []NodeCrash
	// Trace, when non-nil, is called after every round with the 1-based
	// number of the completed round and the maximal relative local
	// error it ended with.
	Trace func(round int, maxErr float64)
	// Shards, when > 0, runs the reduction on the sharded executor with
	// that many worker shards. Results are byte-identical for any
	// Shards ≥ 1 (only wall-clock time changes), but the sharded
	// executor's deterministic schedule differs from the default
	// sequential one, so Shards=0 and Shards=1 runs are distinct
	// reproducible experiments.
	Shards int
	// CacheAware, with Shards > 1, lays the shards out with the
	// cache-aware partitioner instead of contiguous id blocks: shards
	// follow topology edges, so most gossip messages stay
	// shard-local. Byte-identical results — only memory locality and
	// cross-shard traffic change.
	CacheAware bool
	// Metrics, when non-nil, attaches the recorder for the run: invariant
	// samples every Metrics.Interval rounds, counters, and the fault /
	// detector event trace. Attaching a recorder never changes the
	// schedule or the results.
	Metrics *MetricsRecorder
}

// LinkFailure schedules a permanent link failure for Reduce.
type LinkFailure struct {
	// Round at which the failure strikes.
	Round int
	// A, B are the link endpoints.
	A, B int
}

// NodeCrash schedules a permanent node failure for Reduce.
type NodeCrash struct {
	// Round at which the node crashes.
	Round int
	// Node is the crashed node id.
	Node int
}

// ReduceResult reports a completed reduction.
type ReduceResult struct {
	// Estimates[i] is node i's estimate of the aggregate.
	Estimates []float64
	// Exact is the true aggregate (compensated summation oracle).
	Exact float64
	// Rounds is the number of gossip rounds executed.
	Rounds int
	// Converged reports whether Eps was reached before MaxRounds.
	Converged bool
	// MaxError is the final maximal relative local error.
	MaxError float64
}

// Reduce runs a gossip reduction of the per-node inputs over the given
// topology in the deterministic round simulator and returns every node's
// final estimate. len(inputs) must equal the topology's node count.
func Reduce(inputs []float64, algo Algorithm, opt ReduceOptions) (ReduceResult, error) {
	if opt.Topology == nil {
		return ReduceResult{}, errors.New("pcfreduce: ReduceOptions.Topology is required")
	}
	n := opt.Topology.N()
	if len(inputs) != n {
		return ReduceResult{}, fmt.Errorf("pcfreduce: %d inputs for %d nodes", len(inputs), n)
	}
	if !opt.Topology.IsConnected() {
		return ReduceResult{}, errors.New("pcfreduce: topology must be connected")
	}
	if opt.Shards < 0 {
		return ReduceResult{}, fmt.Errorf("pcfreduce: ReduceOptions.Shards is %d, want ≥ 0", opt.Shards)
	}
	applyReduceDefaults(&opt, n)
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = algo.NewNode()
	}
	e := sim.NewScalar(opt.Topology, protos, inputs, opt.Aggregate, opt.Seed, opt.engineOptions()...)
	if opt.LossRate > 0 {
		e.SetInterceptor(fault.NewLoss(opt.LossRate, opt.Seed+1))
	}
	if opt.Metrics != nil {
		e.SetMetrics(opt.Metrics)
	}
	var events []fault.Event
	for _, lf := range opt.LinkFailures {
		events = append(events, fault.LinkFailure(lf.Round, lf.A, lf.B))
	}
	for _, nc := range opt.NodeCrashes {
		events = append(events, fault.NodeCrash(nc.Round, nc.Node))
	}
	plan := fault.NewPlan(events...)
	res := e.Run(sim.RunConfig{
		MaxRounds:  opt.MaxRounds,
		Eps:        opt.Eps,
		OnRound:    plan.OnRound,
		AfterRound: opt.Trace,
	})
	out := ReduceResult{
		Exact:     e.Targets()[0],
		Rounds:    res.Rounds,
		Converged: res.Converged,
		MaxError:  e.MaxError(),
	}
	for _, est := range e.Estimates() {
		if est == nil {
			// Crashed node: it has no estimate; report NaN in its slot
			// so indices still line up with node ids.
			out.Estimates = append(out.Estimates, math.NaN())
			continue
		}
		out.Estimates = append(out.Estimates, est[0])
	}
	return out, nil
}

// engineOptions translates the sharding fields into engine options.
func (opt *ReduceOptions) engineOptions() []sim.EngineOption {
	if opt.Shards <= 0 {
		return nil
	}
	if opt.CacheAware {
		return []sim.EngineOption{sim.WithPartition(topology.CacheAware(opt.Topology, opt.Shards))}
	}
	return []sim.EngineOption{sim.WithShards(opt.Shards)}
}

func applyReduceDefaults(opt *ReduceOptions, n int) {
	if opt.Eps == 0 {
		opt.Eps = 1e-12
	}
	if opt.MaxRounds == 0 {
		log2 := 0
		for 1<<uint(log2) < n {
			log2++
		}
		opt.MaxRounds = 500*log2 + 2000
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
}

// BatchResult reports a completed batched reduction of k aggregates.
type BatchResult struct {
	// Estimates[i][c] is node i's estimate of aggregate c.
	Estimates [][]float64
	// Exact[c] is the true value of aggregate c (compensated oracle).
	Exact []float64
	// Rounds is the number of gossip rounds executed.
	Rounds int
	// Converged reports whether Eps was reached before MaxRounds.
	Converged bool
	// MaxError is the final maximal relative local error over all
	// components.
	MaxError float64
}

// ReduceBatch reduces k aggregates in ONE gossip run: node i contributes
// inputs[i], a vector of k values, and every round's messages carry all
// k components, so the whole batch converges in the rounds one scalar
// reduction takes instead of k times that. All input vectors must share
// one width k ≥ 1. With k = 1 the run is bit-identical to Reduce on the
// corresponding scalars. Faults, sharding and metrics options apply
// exactly as in Reduce.
func ReduceBatch(inputs [][]float64, algo Algorithm, opt ReduceOptions) (BatchResult, error) {
	if opt.Topology == nil {
		return BatchResult{}, errors.New("pcfreduce: ReduceOptions.Topology is required")
	}
	n := opt.Topology.N()
	if len(inputs) != n {
		return BatchResult{}, fmt.Errorf("pcfreduce: %d inputs for %d nodes", len(inputs), n)
	}
	k := len(inputs[0])
	if k < 1 {
		return BatchResult{}, errors.New("pcfreduce: ReduceBatch needs width ≥ 1")
	}
	for i, v := range inputs {
		if len(v) != k {
			return BatchResult{}, fmt.Errorf("pcfreduce: input %d has width %d, want %d", i, len(v), k)
		}
	}
	if !opt.Topology.IsConnected() {
		return BatchResult{}, errors.New("pcfreduce: topology must be connected")
	}
	if opt.Shards < 0 {
		return BatchResult{}, fmt.Errorf("pcfreduce: ReduceOptions.Shards is %d, want ≥ 0", opt.Shards)
	}
	applyReduceDefaults(&opt, n)
	protos := make([]Protocol, n)
	init := make([]Value, n)
	for i := range protos {
		protos[i] = algo.NewNode()
		init[i] = Value{X: append([]float64(nil), inputs[i]...), W: opt.Aggregate.InitialWeight(i)}
	}
	e := sim.New(opt.Topology, protos, init, opt.Seed, opt.engineOptions()...)
	if opt.LossRate > 0 {
		e.SetInterceptor(fault.NewLoss(opt.LossRate, opt.Seed+1))
	}
	if opt.Metrics != nil {
		e.SetMetrics(opt.Metrics)
	}
	var events []fault.Event
	for _, lf := range opt.LinkFailures {
		events = append(events, fault.LinkFailure(lf.Round, lf.A, lf.B))
	}
	for _, nc := range opt.NodeCrashes {
		events = append(events, fault.NodeCrash(nc.Round, nc.Node))
	}
	plan := fault.NewPlan(events...)
	res := e.Run(sim.RunConfig{
		MaxRounds:  opt.MaxRounds,
		Eps:        opt.Eps,
		OnRound:    plan.OnRound,
		AfterRound: opt.Trace,
	})
	out := BatchResult{
		Exact:     append([]float64(nil), e.Targets()...),
		Rounds:    res.Rounds,
		Converged: res.Converged,
		MaxError:  e.MaxError(),
	}
	for _, est := range e.Estimates() {
		if est == nil {
			// Crashed node: report NaNs in its slot so indices still
			// line up with node ids.
			nan := make([]float64, k)
			for c := range nan {
				nan[c] = math.NaN()
			}
			out.Estimates = append(out.Estimates, nan)
			continue
		}
		out.Estimates = append(out.Estimates, append([]float64(nil), est...))
	}
	return out, nil
}

// ConcurrentOptions configures ReduceConcurrent.
type ConcurrentOptions struct {
	// Topology is the gossip network (required, connected).
	Topology *Graph
	// Aggregate selects Sum or Average (default Average).
	Aggregate Aggregate
	// Eps is the convergence target (default 1e-9).
	Eps float64
	// Timeout bounds the run wall-clock (default 10s).
	Timeout time.Duration
	// Seed drives the per-node RNGs (default 1).
	Seed int64
	// Metrics, when non-nil, attaches the recorder for the run: shared
	// atomic counters, wall-clock invariant samples at the monitor
	// cadence, and the fault / detector event trace.
	Metrics *MetricsRecorder
	// MetricsAddr, when non-empty, serves the recorder on an opt-in HTTP
	// endpoint (Prometheus text at /metrics, expvar at /debug/vars, pprof
	// at /debug/pprof/) for the duration of the run.
	MetricsAddr string
}

// ReduceConcurrent runs the reduction as a real concurrent system: one
// goroutine per node, bounded channel inboxes, no global synchronization.
// Messages lost to inbox back-pressure are healed by the flow algorithms
// (and permanently corrupt PushSum — by design, that is the trade-off
// the paper describes).
func ReduceConcurrent(ctx context.Context, inputs []float64, algo Algorithm, opt ConcurrentOptions) (ReduceResult, error) {
	if opt.Topology == nil {
		return ReduceResult{}, errors.New("pcfreduce: ConcurrentOptions.Topology is required")
	}
	n := opt.Topology.N()
	if len(inputs) != n {
		return ReduceResult{}, fmt.Errorf("pcfreduce: %d inputs for %d nodes", len(inputs), n)
	}
	if opt.Eps == 0 {
		opt.Eps = 1e-9
	}
	if opt.Timeout == 0 {
		opt.Timeout = 10 * time.Second
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	init := make([]Value, n)
	for i, x := range inputs {
		init[i] = gossip.Scalar(x, opt.Aggregate.InitialWeight(i))
	}
	net, err := runtime.New(runtime.Config{
		Graph:       opt.Topology,
		NewProtocol: algo.NewNode,
		Init:        init,
		Seed:        opt.Seed,
		Metrics:     opt.Metrics,
		MetricsAddr: opt.MetricsAddr,
	})
	if err != nil {
		return ReduceResult{}, err
	}
	rres, err := net.Run(ctx, runtime.RunConfig{Eps: opt.Eps, Timeout: opt.Timeout, Stable: 3})
	if err != nil {
		return ReduceResult{}, err
	}
	out := ReduceResult{
		Exact:     net.Targets()[0],
		Converged: rres.Converged,
		MaxError:  rres.FinalMaxError,
	}
	for _, est := range net.Estimates() {
		out.Estimates = append(out.Estimates, est[0])
	}
	return out, nil
}

// Matrix is a dense row-major matrix (re-exported from linalg).
type Matrix = linalg.Matrix

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix { return linalg.NewMatrix(rows, cols) }

// RandomMatrix returns a seeded random matrix with entries in [-1, 1).
func RandomMatrix(rows, cols int, seed int64) *Matrix { return linalg.Random(rows, cols, seed) }

// QROptions configures the distributed QR factorization.
type QROptions struct {
	// Topology is the gossip network the matrix rows are distributed
	// over (required; rows ≥ nodes).
	Topology *Graph
	// Eps is the per-reduction target accuracy (default 1e-15, the
	// paper's setting).
	Eps float64
	// MaxRounds caps each reduction (default 4000).
	MaxRounds int
	// Seed makes the factorization reproducible (default 1).
	Seed int64
	// Batched fuses each column's norm and inner-product reductions
	// into one vector-valued reduction, issuing m gossip reductions
	// instead of 2m−1 — roughly halving the total rounds at equal
	// accuracy.
	Batched bool
	// Shards and CacheAware configure the sharded executor for every
	// reduction, as in ReduceOptions.
	Shards     int
	CacheAware bool
}

// QRResult reports a distributed factorization V ≈ Q·R.
type QRResult struct {
	// Q is the column-orthonormal factor (rows distributed over nodes,
	// assembled here).
	Q *Matrix
	// R is node 0's copy of the triangular factor.
	R *Matrix
	// FactorizationError is ‖V − QR‖∞ / ‖V‖∞.
	FactorizationError float64
	// OrthogonalityError is ‖QᵀQ − I‖∞.
	OrthogonalityError float64
	// Reductions and TotalRounds count the gossip work performed.
	Reductions  int
	TotalRounds int
}

// QR computes the fully distributed QR factorization of v (dmGS, paper
// Sec. IV) using the given reduction algorithm for every norm and dot
// product.
func QR(v *Matrix, algo Algorithm, opt QROptions) (QRResult, error) {
	if opt.Topology == nil {
		return QRResult{}, errors.New("pcfreduce: QROptions.Topology is required")
	}
	if opt.Eps == 0 {
		opt.Eps = 1e-15
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 4000
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Shards < 0 {
		return QRResult{}, fmt.Errorf("pcfreduce: QROptions.Shards is %d, want ≥ 0", opt.Shards)
	}
	ropt := ReduceOptions{Topology: opt.Topology, Shards: opt.Shards, CacheAware: opt.CacheAware}
	res, err := dmgs.Factorize(v, dmgs.Config{
		Topology:    opt.Topology,
		NewProtocol: algo.NewNode,
		Eps:         opt.Eps,
		MaxRounds:   opt.MaxRounds,
		StallRounds: 60,
		Seed:        opt.Seed,
		Batched:     opt.Batched,
		Engine:      ropt.engineOptions(),
	})
	if err != nil {
		return QRResult{}, err
	}
	return QRResult{
		Q:                  res.Q,
		R:                  res.R,
		FactorizationError: linalg.FactorizationError(v, res.Q, res.R),
		OrthogonalityError: linalg.OrthogonalityError(res.Q),
		Reductions:         res.Reductions,
		TotalRounds:        res.TotalRounds,
	}, nil
}

// EigenOptions configures the distributed symmetric eigensolver.
type EigenOptions struct {
	// Topology is the gossip network; the matrix dimension must equal
	// its node count (one column per node).
	Topology *Graph
	// Eigenvectors is the number m of dominant eigenpairs (default 1).
	Eigenvectors int
	// Tol is the subspace-stabilization tolerance (default 1e-10).
	Tol float64
	// MaxIterations caps the orthogonal iteration (default 300).
	MaxIterations int
	// Seed makes the run reproducible (default 1).
	Seed int64
}

// EigenResult reports the dominant eigenpairs of a distributed solve.
type EigenResult struct {
	// Values are the dominant eigenvalues in descending |λ| order.
	Values []float64
	// Vectors holds the corresponding eigenvectors as columns.
	Vectors *Matrix
	// Iterations is the number of orthogonal-iteration steps.
	Iterations int
	// Converged reports whether Tol was met before MaxIterations.
	Converged bool
}

// Eigen computes the m dominant eigenpairs of the symmetric matrix a
// with fully distributed orthogonal iteration: the matrix-subspace
// product is one gossip reduction per iteration and the
// orthonormalization builds on the same machinery as QR (the
// eigensolver application of the paper's reference [9]).
func Eigen(a *Matrix, algo Algorithm, opt EigenOptions) (EigenResult, error) {
	if opt.Topology == nil {
		return EigenResult{}, errors.New("pcfreduce: EigenOptions.Topology is required")
	}
	if opt.Eigenvectors == 0 {
		opt.Eigenvectors = 1
	}
	cfg := eigen.DefaultConfig(opt.Topology, algo.NewNode, opt.Eigenvectors)
	if opt.Tol > 0 {
		cfg.Tol = opt.Tol
	}
	if opt.MaxIterations > 0 {
		cfg.MaxIterations = opt.MaxIterations
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	res, err := eigen.Solve(a, cfg)
	if err != nil {
		return EigenResult{}, err
	}
	return EigenResult{
		Values:     res.Values,
		Vectors:    res.Vectors,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}, nil
}

// WeightedReduce computes the weighted mean Σ wᵢ·xᵢ / Σ wᵢ of the
// per-node inputs with the given positive per-node weights, using the
// same gossip machinery as Reduce (node i contributes mass (wᵢ·xᵢ, wᵢ)).
// The Aggregate field of opt is ignored.
func WeightedReduce(inputs, weights []float64, algo Algorithm, opt ReduceOptions) (ReduceResult, error) {
	if opt.Topology == nil {
		return ReduceResult{}, errors.New("pcfreduce: ReduceOptions.Topology is required")
	}
	n := opt.Topology.N()
	if len(inputs) != n || len(weights) != n {
		return ReduceResult{}, fmt.Errorf("pcfreduce: %d inputs / %d weights for %d nodes", len(inputs), len(weights), n)
	}
	for i, w := range weights {
		if !(w > 0) {
			return ReduceResult{}, fmt.Errorf("pcfreduce: weight %d is %g, want > 0", i, w)
		}
	}
	if !opt.Topology.IsConnected() {
		return ReduceResult{}, errors.New("pcfreduce: topology must be connected")
	}
	applyReduceDefaults(&opt, n)
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = algo.NewNode()
	}
	init := make([]Value, n)
	for i := range init {
		init[i] = gossip.Scalar(weights[i]*inputs[i], weights[i])
	}
	e := sim.New(opt.Topology, protos, init, opt.Seed)
	if opt.LossRate > 0 {
		e.SetInterceptor(fault.NewLoss(opt.LossRate, opt.Seed+1))
	}
	res := e.Run(sim.RunConfig{MaxRounds: opt.MaxRounds, Eps: opt.Eps, AfterRound: opt.Trace})
	out := ReduceResult{
		Exact:     e.Targets()[0],
		Rounds:    res.Rounds,
		Converged: res.Converged,
		MaxError:  e.MaxError(),
	}
	for _, est := range e.Estimates() {
		out.Estimates = append(out.Estimates, est[0])
	}
	return out, nil
}

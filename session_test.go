package pcfreduce_test

import (
	"math"
	"testing"

	"pcfreduce"
)

func TestSessionBasics(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	in := inputsFor(g)
	s, err := pcfreduce.NewSession(in, pcfreduce.PCF, pcfreduce.SessionOptions{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	if !s.StepUntil(1e-12, 3000) {
		t.Fatalf("did not converge: %.3e", s.MaxError())
	}
	if s.Rounds() == 0 {
		t.Fatal("rounds not counted")
	}
	ests := s.Estimates()
	if len(ests) != g.N() {
		t.Fatal("estimate count")
	}
	if math.Abs(ests[3]-s.Exact())/s.Exact() > 1e-11 {
		t.Fatalf("estimate %.15g vs exact %.15g", ests[3], s.Exact())
	}
}

func TestSessionLiveUpdate(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	in := inputsFor(g)
	s, err := pcfreduce.NewSession(in, pcfreduce.PCF, pcfreduce.SessionOptions{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	s.StepUntil(1e-12, 3000)
	before := s.Exact()
	s.UpdateInput(5, in[5]+16)
	if math.Abs(s.Exact()-before-1) > 1e-12 { // +16 spread over 16 nodes
		t.Fatalf("exact moved %.12g, want +1", s.Exact()-before)
	}
	if s.MaxError() < 1e-4 {
		t.Fatal("error should jump after the update")
	}
	if !s.StepUntil(1e-12, 3000) {
		t.Fatalf("did not re-converge: %.3e", s.MaxError())
	}
}

func TestSessionFaultsInteractive(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	in := inputsFor(g)
	s, err := pcfreduce.NewSession(in, pcfreduce.PCF, pcfreduce.SessionOptions{
		Topology: g,
		LossRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash before any mixing: the dead node takes exactly its own
	// input with it, so the survivors converge tightly to their own
	// aggregate (after mixing, PCF would instead converge near the
	// ORIGINAL aggregate — see EXP-I and DESIGN.md finding 3).
	s.CrashNode(9)
	s.Step(40)
	s.FailLink(0, 1)
	if !s.StepUntil(1e-10, 8000) {
		t.Fatalf("did not converge after interactive faults: %.3e", s.MaxError())
	}
	if !math.IsNaN(s.Estimates()[9]) {
		t.Fatal("crashed node must report NaN")
	}
	// Exact is the survivors' aggregate.
	var want float64
	for i, x := range in {
		if i != 9 {
			want += x
		}
	}
	want /= float64(len(in) - 1)
	if math.Abs(s.Exact()-want) > 1e-12 {
		t.Fatalf("exact = %.15g, want survivors' %.15g", s.Exact(), want)
	}
}

// Crashing after mixing: the survivors reach consensus near the
// ORIGINAL aggregate (PCF's surviving-mass semantics), offset from the
// survivors'-only aggregate by a first-order amount.
func TestSessionCrashAfterMixing(t *testing.T) {
	g := pcfreduce.Hypercube(4)
	in := inputsFor(g)
	var original float64
	for _, x := range in {
		original += x
	}
	original /= float64(len(in))
	s, err := pcfreduce.NewSession(in, pcfreduce.PCF, pcfreduce.SessionOptions{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	s.StepUntil(1e-12, 3000) // converge before the crash
	s.CrashNode(9)
	s.Step(2000)
	for i, est := range s.Estimates() {
		if i == 9 {
			continue
		}
		if math.Abs(est-original)/original > 1e-9 {
			t.Fatalf("node %d: %.12g, want near original %.12g", i, est, original)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := pcfreduce.NewSession([]float64{1}, pcfreduce.PCF, pcfreduce.SessionOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	g := pcfreduce.Ring(4)
	if _, err := pcfreduce.NewSession([]float64{1}, pcfreduce.PCF, pcfreduce.SessionOptions{Topology: g}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

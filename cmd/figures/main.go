// Command figures regenerates the data behind every figure of the
// paper's evaluation (Figs. 2, 3, 4, 6, 7, 8) and the ablation
// experiments documented in DESIGN.md (EXP-A … EXP-K).
//
// Usage:
//
//	figures -fig 3            # one figure (2,3,4,6,7,8)
//	figures -exp D            # one ablation (A,B,C,D,E,G)
//	figures -all              # everything
//	figures -fig 3 -scale 4   # cap the size sweep at 2^(3*4) nodes
//	figures -fig 8 -runs 10   # fewer QR repetitions than the paper's 50
//	figures -csv              # CSV instead of aligned tables
//
// Paper-scale settings (-scale 5, -runs 50) match the publication but
// take substantially longer; the defaults produce the same qualitative
// shapes in seconds to minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/profiling"
	"pcfreduce/internal/trace"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure to regenerate (2,3,4,6,7,8); 0 = none")
		exp   = flag.String("exp", "", "ablation experiment (A,B,C,D,E,G,H,I,J,K)")
		all   = flag.Bool("all", false, "regenerate every figure and ablation")
		scale = flag.Int("scale", 4, "max size index i for Figs. 3/6 (n = 2^(3i); paper: 5)")
		runs  = flag.Int("runs", 10, "QR repetitions per size for Fig. 8 (paper: 50)")
		qrDim = flag.Int("qrdim", 8, "max hypercube dimension for Fig. 8 (paper: 10)")
		seed  = flag.Int64("seed", 1, "base random seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		bench     = flag.String("bench-json", "", "measure the simulator hot path and write results to this JSON file (e.g. benches/BENCH_sim.json)")
		benchGate = flag.String("bench-gate", "", "re-measure the sharded PCF round (metrics disabled) against the recorded baseline in this JSON file and exit non-zero on a >5% ns/op or any allocs/op regression")
		benchSnap = flag.String("bench-snapshot", "", "measure the million-node snapshot/encode cost and merge it into this JSON file, preserving the other recorded baselines")

		benchPhase2 = flag.String("bench-phase2", "", "measure the serial-vs-parallel phase-2 delivery series, regenerate the partition-quality table and merge both into this JSON file")

		benchSmoke = flag.Bool("bench-smoke", false, "fast machine-independent CI check: cross-layout bitwise identity, k-value batching speedup floor and the cache-aware partition contract")

		phaseReport   = flag.Bool("phase-report", false, "run short timing-enabled sharded reductions and print the per-shard phase breakdown: partition-predicted vs measured delivery share, barrier waits and pool utilization")
		checkTimeline = flag.String("check-timeline", "", "structurally validate a gossipsim -timeline JSON export (named tracks, phase slices, fault/churn instants) and exit non-zero on problems")

		shards     = flag.Int("shards", 8, "shard count for the sharded-executor series of -bench-json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		metricsEvery = flag.Int("metrics", 0, "for the failure figures (4, 7): sample the invariant probes every K iterations and print each run's metrics table (0 = off)")
		eventsOut    = flag.String("events", "", `for the failure figures (4, 7): write each run's trace events as JSONL to this file ("-" = stdout)`)
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	emit := func(t *trace.Table) {
		if *csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			return
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	ran := false
	runFig := func(n int) bool { return *all || *fig == n }
	runExp := func(s string) bool { return *all || *exp == s }

	if runFig(2) {
		figure2(emit, *seed)
		ran = true
	}
	if runFig(3) {
		accuracyFigure(emit, "Figure 3 — PF accuracy floor vs system size", experiments.PushFlow, *scale, *seed)
		ran = true
	}
	if runFig(4) {
		failureFigure(emit, "Figure 4 — PF, single permanent link failure", experiments.PushFlow, *seed, *metricsEvery, *eventsOut)
		ran = true
	}
	if runFig(6) {
		accuracyFigure(emit, "Figure 6 — PCF accuracy floor vs system size", experiments.PCF, *scale, *seed)
		ran = true
	}
	if runFig(7) {
		failureFigure(emit, "Figure 7 — PCF, single permanent link failure", experiments.PCF, *seed, *metricsEvery, *eventsOut)
		ran = true
	}
	if runFig(8) {
		figure8(emit, *qrDim, *runs, *seed)
		ran = true
	}
	if runExp("A") {
		expA(emit, *seed)
		ran = true
	}
	if runExp("B") {
		expB(emit, *seed)
		ran = true
	}
	if runExp("C") {
		expC(emit, *seed)
		ran = true
	}
	if runExp("D") {
		expD(emit, *seed)
		ran = true
	}
	if runExp("E") {
		expE(emit, *seed)
		ran = true
	}
	if runExp("G") {
		expG(emit, *seed)
		ran = true
	}
	if runExp("H") {
		expH(emit, *seed)
		ran = true
	}
	if runExp("I") {
		expI(emit, *seed)
		ran = true
	}
	if runExp("J") {
		expJ(emit, *seed)
		ran = true
	}
	if runExp("K") {
		expK(emit, *seed)
		ran = true
	}
	if *bench != "" {
		writeBenchJSON(*bench, *seed, *shards)
		ran = true
	}
	if *benchSnap != "" {
		runBenchSnapshot(*benchSnap, *seed, *shards)
		ran = true
	}
	if *benchPhase2 != "" {
		runBenchPhase2(*benchPhase2, *seed, *shards)
		ran = true
	}
	if *benchGate != "" {
		runBenchGate(*benchGate, *seed)
		ran = true
	}
	if *benchSmoke {
		runBenchSmoke(*seed)
		ran = true
	}
	if *phaseReport {
		runPhaseReport(emit, *seed, *shards)
		ran = true
	}
	if *checkTimeline != "" {
		runCheckTimeline(*checkTimeline)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func figure2(emit func(*trace.Table), seed int64) {
	const n = 8
	res, err := experiments.BusExample(experiments.PushFlow, n, seed)
	if err != nil {
		fatal(err)
	}
	t := trace.NewTable(
		fmt.Sprintf("Figure 2 — bus network worked example (PF, n=%d, v1=n+1, vi=1): converged in %d rounds", n, res.Rounds),
		"node", "estimate (→2)", "flow fx(i,i+1)", "fx−2fw invariant", "analytic n−i−1")
	for i := 0; i < n; i++ {
		flow, inv, analytic := "", "", ""
		if i < n-1 {
			flow = trace.FormatFloat(res.ForwardFlowValue[i])
			inv = trace.FormatFloat(res.FlowInvariant[i])
			analytic = trace.FormatFloat(experiments.ExpectedForwardFlow(n, i))
		}
		t.AddRow(i, res.Estimates[i], flow, inv, analytic)
	}
	emit(t)
	// The PCF counterpart: same estimates, but the raw flows stay near
	// zero because they are periodically cancelled — the property that
	// makes failure handling cheap.
	resPCF, err := experiments.BusExample(experiments.PCF, n, seed)
	if err != nil {
		fatal(err)
	}
	t2 := trace.NewTable("Figure 2 (PCF counterpart) — flows converge toward 0, estimates identical",
		"node", "estimate (→2)", "flow fx(i,i+1)", "fx−2fw invariant")
	for i := 0; i < n; i++ {
		flow, inv := "", ""
		if i < n-1 {
			flow = trace.FormatFloat(resPCF.ForwardFlowValue[i])
			inv = trace.FormatFloat(resPCF.FlowInvariant[i])
		}
		t2.AddRow(i, resPCF.Estimates[i], flow, inv)
	}
	emit(t2)
}

func accuracyFigure(emit func(*trace.Table), title string, algo experiments.Algorithm, scale int, seed int64) {
	cfg := experiments.DefaultAccuracyConfig(algo, scale)
	cfg.Seed = seed
	points := experiments.Accuracy(cfg)
	t := trace.NewTable(title+" (series as plotted: topology × aggregate)",
		"topology", "aggregate", "nodes", "max local error floor", "rounds", "reaches 1e-15")
	for _, p := range points {
		t.AddRow(p.Topology, p.Aggregate, p.Nodes, p.FloorMaxErr, p.Rounds, p.ReachedTarget)
	}
	emit(t)
}

func failureFigure(emit func(*trace.Table), title string, algo experiments.Algorithm, seed int64, metricsEvery int, eventsPath string) {
	for _, failAt := range []int{75, 175} {
		cfg := experiments.DefaultFailureConfig(algo, failAt)
		cfg.Seed = seed
		if metricsEvery > 0 || eventsPath != "" {
			cfg.Metrics = metrics.New(metrics.Config{Interval: max(1, metricsEvery)})
		}
		res := experiments.Failure(cfg)
		t := trace.NewTable(
			fmt.Sprintf("%s at iteration %d (6D hypercube, 200 iterations; fall-back factor %.3g)",
				title, failAt, res.Fallback),
			"iteration", "max local error", "median local error")
		for _, p := range res.Series {
			if p.Iteration%5 == 0 || (p.Iteration >= failAt-2 && p.Iteration <= failAt+3) {
				t.AddRow(p.Iteration, p.Max, p.Median)
			}
		}
		emit(t)
		if cfg.Metrics != nil {
			if metricsEvery > 0 {
				emit(cfg.Metrics.Table())
			}
			if eventsPath != "" {
				writeEventsJSONL(cfg.Metrics, eventsPath)
			}
		}
	}
}

// writeEventsJSONL appends one run's trace events to the given path
// ("-" = stdout). The failure figures run twice (failAt 75 and 175), so
// the file accumulates both traces in run order.
func writeEventsJSONL(rec *metrics.Recorder, path string) {
	w := os.Stdout
	if path != "-" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteEventsJSONL(w); err != nil {
		fatal(err)
	}
}

func figure8(emit func(*trace.Table), maxDim, runs int, seed int64) {
	t := trace.NewTable(
		fmt.Sprintf("Figure 8 — dmGS factorization error ‖V−QR‖∞/‖V‖∞, hypercube, m=16, %d runs", runs),
		"nodes", "dmGS(PF)", "dmGS(PCF)", "PF orth err", "PCF orth err")
	type row struct{ pf, pcf experiments.QRPoint }
	var rows []row
	for dim := 5; dim <= maxDim; dim++ {
		cfgPF := experiments.DefaultQRConfig(experiments.PushFlow, maxDim, runs)
		cfgPF.Seed = seed
		pf, err := experiments.QRSingle(cfgPF, dim)
		if err != nil {
			fatal(err)
		}
		cfgPCF := experiments.DefaultQRConfig(experiments.PCF, maxDim, runs)
		cfgPCF.Seed = seed
		pcf, err := experiments.QRSingle(cfgPCF, dim)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row{pf, pcf})
	}
	for _, r := range rows {
		t.AddRow(r.pf.Nodes, r.pf.FactErrMean, r.pcf.FactErrMean, r.pf.OrthErrMean, r.pcf.OrthErrMean)
	}
	emit(t)
}

func expA(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-A — accuracy floor after a single lost message (6D hypercube, AVG)",
		"algorithm", "max local error floor", "rounds")
	for _, algo := range []experiments.Algorithm{experiments.PushSum, experiments.PushFlow, experiments.PCF, experiments.PCFRobust, experiments.FlowUpdating} {
		res := experiments.SingleLoss(algo, 6, 40, seed)
		t.AddRow(res.Algorithm, res.FloorMaxErr, res.Rounds)
	}
	emit(t)
}

func expB(emit func(*trace.Table), seed int64) {
	algos := []experiments.Algorithm{experiments.PushSum, experiments.PushFlow, experiments.PCF}
	points := experiments.Scaling(algos, 3, 12, 1e-9, seed)
	t := trace.NewTable("EXP-B — rounds to reach 1e-9 on hypercubes vs parallel log2(n) steps",
		"nodes", "push-sum", "PF", "PCF", "recursive-doubling steps")
	for _, p := range points {
		t.AddRow(p.Nodes, p.RoundsToEps["push-sum"], p.RoundsToEps["PF"], p.RoundsToEps["PCF"], p.ParallelSteps)
	}
	emit(t)
}

func expC(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-C — PF ≡ PCF under identical failure-free schedules",
		"inputs", "rounds compared", "max estimate divergence", "PF rounds to 1e-12", "PCF rounds to 1e-12")
	// Dyadic inputs over few rounds: every operation is exact in binary
	// floating point (the value depth stays below 53 bits), so the
	// divergence must be exactly zero. Beyond ~20 rounds rounding sets
	// in and PF/PCF accumulate ulp-level ordering differences.
	dy := experiments.Equivalence(6, 15, seed, true, 1e-12)
	t.AddRow("dyadic (exact)", 15, dy.MaxDivergence, dy.RoundsPF, dy.RoundsPCF)
	fl := experiments.Equivalence(6, 400, seed, false, 1e-12)
	t.AddRow("uniform floats", 400, fl.MaxDivergence, fl.RoundsPF, fl.RoundsPCF)
	emit(t)
}

func expD(emit func(*trace.Table), seed int64) {
	algos := []experiments.Algorithm{experiments.PushSum, experiments.PushFlow, experiments.PCF}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	points := experiments.LossSweep(algos, rates, 6, 1e-12, 4000, seed)
	t := trace.NewTable("EXP-D — convergence under sustained message loss (6D hypercube, target 1e-12)",
		"algorithm", "loss rate", "rounds to 1e-12", "best max error")
	for _, p := range points {
		t.AddRow(p.Algorithm, p.LossRate, p.RoundsToEps, p.FloorMaxErr)
	}
	emit(t)
}

func expE(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-E — recovery from a bounded bit-flip storm (mantissa/sign bits, p=0.02/msg, rounds 0–100)",
		"algorithm", "flips injected", "best error after storm", "rounds to 1e-12 after storm")
	algos := []experiments.Algorithm{experiments.PushSum, experiments.PushFlow, experiments.PCF, experiments.PCFRobust}
	for _, algo := range algos {
		res := experiments.BitFlips(algo, 6, 0.02, 100, 600, 1e-12, true, seed)
		t.AddRow(res.Algorithm, res.Flips, res.FloorMaxErr, res.RecoveryRounds)
	}
	emit(t)
	t2 := trace.NewTable("EXP-E (unbounded) — same storm with exponent bits included: finite giant corruptions are conserved as mass transfers whose floating-point residue defeats every algorithm, motivating message checksums in deployments",
		"algorithm", "flips injected", "best error after storm", "rounds to 1e-12 after storm")
	for _, algo := range algos {
		res := experiments.BitFlips(algo, 6, 0.02, 100, 600, 1e-12, false, seed)
		t2.AddRow(res.Algorithm, res.Flips, res.FloorMaxErr, res.RecoveryRounds)
	}
	emit(t2)
}

func expG(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-G — nodes with a wrong result after ONE lost message (n=1024)",
		"method", "nodes", "wrong nodes")
	for _, r := range experiments.Fragility(10, seed) {
		t.AddRow(r.Method, r.Nodes, r.WrongNodes)
	}
	emit(t)
}

func expH(emit func(*trace.Table), seed int64) {
	// Whether a message is in flight on the failing link at the failure
	// round depends on the schedule, so sweep the failure time and
	// report the worst final error per model: under the quiescent model
	// PCF always returns to machine precision, under the abrupt model
	// the runs that lose an unacked flow delta retain an ε(t_fail)/n
	// bias floor.
	t := trace.NewTable("EXP-H — link-failure model: quiescent (paper) vs abrupt (in-flight delta lost); failure swept over iterations 60–99, 400 iterations total",
		"algorithm", "failure model", "worst final err", "runs with floor > 1e-13")
	for _, algo := range []experiments.Algorithm{experiments.PushFlow, experiments.PCF} {
		for _, abrupt := range []bool{false, true} {
			worst := 0.0
			floored := 0
			for failAt := 60; failAt < 100; failAt++ {
				cfg := experiments.DefaultFailureConfig(algo, failAt)
				cfg.Seed = seed
				cfg.Rounds = 400
				cfg.Abrupt = abrupt
				res := experiments.Failure(cfg)
				if res.ErrFinal > worst {
					worst = res.ErrFinal
				}
				if res.ErrFinal > 1e-13 {
					floored++
				}
			}
			model := "quiescent"
			if abrupt {
				model = "abrupt"
			}
			t.AddRow(algo.Name, model, worst, fmt.Sprintf("%d/40", floored))
		}
	}
	emit(t)
}

func expI(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-I — node crash at iteration 100 (5D hypercube, 400 iterations): which aggregate do the survivors converge to?",
		"algorithm", "err vs survivors' initial aggregate", "err vs original aggregate", "survivor agreement spread")
	for _, algo := range []experiments.Algorithm{experiments.PushFlow, experiments.PCF} {
		rounds := 400
		if algo.Name == "PF" {
			rounds = 2000 // PF restarts at the crash; give it time to re-converge
		}
		res := experiments.NodeCrash(algo, 5, 100, rounds, 7, seed)
		t.AddRow(algo.Name, res.ErrFinalVsSurvivors, res.ErrFinalVsOriginal, res.Spread)
	}
	emit(t)
}

func expJ(emit func(*trace.Table), seed int64) {
	t := trace.NewTable("EXP-J — live monitoring: drifting inputs (one random-walk step every 10 rounds) under 5% message loss; steady-state tracking error (6D hypercube, 1200 rounds)",
		"algorithm", "median tracking error", "worst tracking error")
	for _, algo := range []experiments.Algorithm{experiments.PushSum, experiments.PushFlow, experiments.PCF} {
		res := experiments.Monitoring(algo, 6, 1200, 10, 0.05, seed)
		t.AddRow(res.Algorithm, res.TrackingErrMedian, res.TrackingErrWorst)
	}
	emit(t)
}

func expK(emit func(*trace.Table), seed int64) {
	algos := []experiments.Algorithm{experiments.PushFlow, experiments.PCF, experiments.FlowUpdating}
	dists := []experiments.DataDist{
		experiments.DistUniform, experiments.DistConstant, experiments.DistLinear,
		experiments.DistLogNormal, experiments.DistSigned,
	}
	points := experiments.DataDistSweep(algos, dists, 9, seed)
	t := trace.NewTable("EXP-K — accuracy floor vs initial-data distribution (512-node hypercube, AVG): Sec. II-B's data dependence for PF/FU, PCF insensitive",
		"algorithm", "distribution", "max local error floor")
	for _, p := range points {
		t.AddRow(p.Algorithm, p.Distribution, p.FloorMaxErr)
	}
	emit(t)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"pcfreduce/internal/checkpoint"
	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// simBaselines are the pre-optimization reference timings of the
// simulator hot path (one synchronous round plus the oracle error scan
// on an n=1024 hypercube, Intel Xeon @ 2.70GHz), recorded before the
// allocation-free fast path and dense-slice protocol state landed.
// Speedups in BENCH_sim.json are computed against these.
var simBaselines = map[string]float64{
	"PCF":        606251,
	"PCF-robust": 892518,
	"PF":         632415,
	"push-sum":   233779,
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BaselineNs  float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
}

// scalingEntry is one point of the n-scaling series: the same PCF round
// on the sequential executor and on the sharded one.
type scalingEntry struct {
	Topology          string  `json:"topology"`
	N                 int     `json:"n"`
	Shards            int     `json:"shards"`
	SequentialNsPerOp float64 `json:"sequential_ns_per_op"`
	ShardedNsPerOp    float64 `json:"sharded_ns_per_op"`
	Speedup           float64 `json:"sharded_speedup"`
	ShardedAllocsOp   int64   `json:"sharded_allocs_per_op"`
}

// footprintEntry records the CSR adjacency cost of one topology family
// at n ≈ 2^20 (see BenchmarkFootprint in internal/topology for the
// testing.B.ReportMetric counterpart).
type footprintEntry struct {
	Family       string  `json:"family"`
	N            int     `json:"n"`
	Edges        int     `json:"edges"`
	BytesPerNode float64 `json:"graph_bytes_per_node"`
}

type millionEntry struct {
	Topology    string  `json:"topology"`
	N           int     `json:"n"`
	Algorithm   string  `json:"algorithm"`
	Shards      int     `json:"shards"`
	StepNsPerOp float64 `json:"step_ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshotCost records what a full-state checkpoint costs at
// million-node scale: Engine.Snapshot (flat-slice copies of the
// struct-of-arrays protocol state, RNG streams and in-flight messages)
// and checkpoint.Encode (the versioned binary codec), in ns per op,
// plus the encoded size. The encoded bytes are deterministic for a
// fixed seed, warmup and algorithm, so the gate can hold them to a
// tight bound while the timings get a memcpy-noise budget.
type snapshotCost struct {
	Topology        string  `json:"topology"`
	N               int     `json:"n"`
	Algorithm       string  `json:"algorithm"`
	Shards          int     `json:"shards"`
	WarmupRounds    int     `json:"warmup_rounds"`
	SnapshotNsPerOp float64 `json:"snapshot_ns_per_op"`
	EncodeNsPerOp   float64 `json:"encode_ns_per_op"`
	EncodedBytes    int     `json:"encoded_bytes"`
	BytesPerNode    float64 `json:"encoded_bytes_per_node"`
}

type benchReport struct {
	Description string `json:"description"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Note        string `json:"note,omitempty"`

	// HotPath is the original per-algorithm series on the n=1024
	// hypercube (sequential executor), with speedups against the
	// pre-optimization baselines.
	HotPathTopology string       `json:"hot_path_topology"`
	HotPathN        int          `json:"hot_path_n"`
	Benchmarks      []benchEntry `json:"benchmarks"`

	// NScaling compares the sequential and sharded executors on growing
	// hypercubes; MillionNode is one n=10^6 torus round; Footprint is
	// the CSR bytes/node table at n≈2^20.
	NScaling    []scalingEntry   `json:"n_scaling,omitempty"`
	MillionNode *millionEntry    `json:"million_node,omitempty"`
	Footprint   []footprintEntry `json:"memory_footprint,omitempty"`

	// SnapshotCost is the checkpoint subsystem's price tag, recorded by
	// -bench-snapshot and re-checked by -bench-gate.
	SnapshotCost *snapshotCost `json:"snapshot_cost,omitempty"`
}

// bestOf3 runs fn as a testing.Benchmark three times and keeps the
// fastest per-op result — the standard noise-robust estimate on shared
// machines.
func bestOf3(fn func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(fn)
		if rep == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// benchRound measures one Step+Errors round of a warmed-up engine (the
// warmup lets inbox and free-list high-water marks settle, so the
// steady-state numbers are not polluted by one-time growth).
func benchRound(e *sim.Engine) testing.BenchmarkResult {
	for r := 0; r < 32; r++ {
		e.Step()
		e.Errors()
	}
	return bestOf3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
			e.Errors()
		}
	})
}

// writeBenchJSON measures the simulator hot path — the per-algorithm
// series on the n=1024 hypercube, the sequential-vs-sharded n-scaling
// series, one n=10^6 torus round, and the CSR bytes/node table — and
// writes the results to the given JSON file.
func writeBenchJSON(path string, seed int64, shards int) {
	g := topology.Hypercube(10)
	rep := benchReport{
		Description:     "simulator hot path: one synchronous round + oracle error scan per op",
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		HotPathTopology: g.Name(),
		HotPathN:        g.N(),
	}
	// Re-recording the hot path must not silently drop the snapshot-cost
	// baseline (recorded separately by -bench-snapshot).
	if raw, err := os.ReadFile(path); err == nil {
		var old benchReport
		if json.Unmarshal(raw, &old) == nil {
			rep.SnapshotCost = old.SnapshotCost
		}
	}
	if rep.GoMaxProcs < shards {
		rep.Note = fmt.Sprintf(
			"recorded with GOMAXPROCS=%d < %d shards: shard workers cannot run concurrently, so sharded_speedup reflects only the phase-split model's sequential gains (no shuffle pass, ascending-id streaming); rerun -bench-json on a multicore host to measure parallel scaling",
			rep.GoMaxProcs, shards)
	}
	inputs := experiments.UniformInputs(g.N(), seed)
	for _, al := range []experiments.Algorithm{
		experiments.PCF, experiments.PCFRobust, experiments.PushFlow, experiments.PushSum,
	} {
		e := sim.NewScalar(g, al.Protos(g.N()), inputs, gossip.Average, seed)
		best := benchRound(e)
		ent := benchEntry{
			Name:        al.Name,
			NsPerOp:     float64(best.NsPerOp()),
			BytesPerOp:  best.AllocedBytesPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
		}
		if base, ok := simBaselines[al.Name]; ok {
			ent.BaselineNs = base
			ent.Speedup = base / ent.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, ent)
		fmt.Fprintf(os.Stderr, "bench %-10s %10.0f ns/op  %3d allocs/op  %.2fx\n",
			al.Name, ent.NsPerOp, ent.AllocsPerOp, ent.Speedup)
	}

	// n-scaling: the same PCF round, sequential vs sharded, on growing
	// hypercubes up to n = 2^17.
	for _, dim := range []int{10, 12, 14, 17} {
		sg := topology.Hypercube(dim)
		n := sg.N()
		in := experiments.UniformInputs(n, seed)
		seq := benchRound(sim.NewScalar(sg, experiments.PCF.Protos(n), in, gossip.Average, seed))
		shd := benchRound(sim.NewScalar(sg, experiments.PCF.Protos(n), in, gossip.Average, seed,
			sim.WithShards(shards)))
		ent := scalingEntry{
			Topology:          sg.Name(),
			N:                 n,
			Shards:            shards,
			SequentialNsPerOp: float64(seq.NsPerOp()),
			ShardedNsPerOp:    float64(shd.NsPerOp()),
			Speedup:           float64(seq.NsPerOp()) / float64(shd.NsPerOp()),
			ShardedAllocsOp:   shd.AllocsPerOp(),
		}
		rep.NScaling = append(rep.NScaling, ent)
		fmt.Fprintf(os.Stderr, "scale %-16s n=%-7d seq %12.0f ns/op  sharded(%d) %12.0f ns/op  %.2fx\n",
			ent.Topology, n, ent.SequentialNsPerOp, shards, ent.ShardedNsPerOp, ent.Speedup)
	}

	// Million-node round: one PCF Step+Errors on the 100x100x100 torus.
	mg := topology.Torus3D(100, 100, 100)
	mn := mg.N()
	me := sim.NewScalar(mg, experiments.PCF.Protos(mn), experiments.UniformInputs(mn, seed),
		gossip.Average, seed, sim.WithShards(shards))
	mr := benchRound(me)
	rep.MillionNode = &millionEntry{
		Topology:    mg.Name(),
		N:           mn,
		Algorithm:   experiments.PCF.Name,
		Shards:      shards,
		StepNsPerOp: float64(mr.NsPerOp()),
		AllocsPerOp: mr.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "million-node %s: %.1f ms/round, %d allocs/op\n",
		mg.Name(), rep.MillionNode.StepNsPerOp/1e6, mr.AllocsPerOp())

	// CSR footprint at n ≈ 2^20 per topology family.
	for _, fg := range []*topology.Graph{
		topology.Hypercube(20),
		topology.Torus3D(128, 128, 64),
		topology.Grid2D(1024, 1024),
		topology.Ring(1 << 20),
		topology.Path(1 << 20),
	} {
		n := fg.N()
		edges := 0
		for i := 0; i < n; i++ {
			edges += fg.Degree(i)
		}
		edges /= 2
		rep.Footprint = append(rep.Footprint, footprintEntry{
			Family:       fg.Name(),
			N:            n,
			Edges:        edges,
			BytesPerNode: float64(fg.FootprintBytes()) / float64(n),
		})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// snapshotWarmupRounds is how many rounds the engine runs before the
// snapshot is taken. Kept small and fixed so the in-flight message
// state — and with it the encoded byte count — is identical between the
// recording host and the gate.
const snapshotWarmupRounds = 8

// measureSnapshotCost benchmarks Engine.Snapshot and checkpoint.Encode
// on the million-node torus after a fixed warmup. Shared between
// -bench-snapshot (recording) and -bench-gate (regression check) so
// both measure exactly the same operation.
func measureSnapshotCost(seed int64, shards int) *snapshotCost {
	runtime.GC() // shed any earlier benchmark's heap before the ~400 MB working set
	g := topology.Torus3D(100, 100, 100)
	n := g.N()
	e := sim.NewScalar(g, experiments.PCF.Protos(n), experiments.UniformInputs(n, seed),
		gossip.Average, seed, sim.WithShards(shards))
	for r := 0; r < snapshotWarmupRounds; r++ {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		fatal(err)
	}
	snapRes := bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if snap, err = e.Snapshot(); err != nil {
				fatal(err)
			}
		}
	})
	var blob []byte
	encRes := bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blob = checkpoint.Encode(&checkpoint.Checkpoint{Snap: snap})
		}
	})
	return &snapshotCost{
		Topology:        g.Name(),
		N:               n,
		Algorithm:       experiments.PCF.Name,
		Shards:          shards,
		WarmupRounds:    snapshotWarmupRounds,
		SnapshotNsPerOp: float64(snapRes.NsPerOp()),
		EncodeNsPerOp:   float64(encRes.NsPerOp()),
		EncodedBytes:    len(blob),
		BytesPerNode:    float64(len(blob)) / float64(n),
	}
}

// runBenchSnapshot measures the million-node snapshot cost and merges
// it into the existing bench JSON, leaving every other recorded number
// untouched (the hot-path and scaling baselines were recorded
// separately and must not shift when only the checkpoint subsystem is
// re-benchmarked).
func runBenchSnapshot(path string, seed int64, shards int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	sc := measureSnapshotCost(seed, shards)
	rep.SnapshotCost = sc
	fmt.Fprintf(os.Stderr, "snapshot %s n=%d: Snapshot %.1f ms, Encode %.1f ms, %d bytes (%.1f B/node)\n",
		sc.Topology, sc.N, sc.SnapshotNsPerOp/1e6, sc.EncodeNsPerOp/1e6, sc.EncodedBytes, sc.BytesPerNode)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pcfreduce/internal/checkpoint"
	"pcfreduce/internal/core"
	"pcfreduce/internal/dmgs"
	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/linalg"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// simBaselines are the pre-optimization reference timings of the
// simulator hot path (one synchronous round plus the oracle error scan
// on an n=1024 hypercube, Intel Xeon @ 2.70GHz), recorded before the
// allocation-free fast path and dense-slice protocol state landed.
// Speedups in BENCH_sim.json are computed against these.
var simBaselines = map[string]float64{
	"PCF":        606251,
	"PCF-robust": 892518,
	"PF":         632415,
	"push-sum":   233779,
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BaselineNs  float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
}

// scalingEntry is one point of the n-scaling series: the same PCF round
// on the sequential executor and on the sharded one. GoMaxProcs records
// the core budget the row was measured under — a sharded_speedup above 1
// with gomaxprocs=1 is a schedule win (no shuffle pass), not parallel
// scaling, and the gate uses the field to grant leniency when it runs
// on fewer cores than the recorder.
type scalingEntry struct {
	Topology          string  `json:"topology"`
	N                 int     `json:"n"`
	Shards            int     `json:"shards"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	SequentialNsPerOp float64 `json:"sequential_ns_per_op"`
	ShardedNsPerOp    float64 `json:"sharded_ns_per_op"`
	Speedup           float64 `json:"sharded_speedup"`
	ShardedAllocsOp   int64   `json:"sharded_allocs_per_op"`
}

// footprintEntry records the CSR adjacency cost of one topology family
// at n ≈ 2^20 (see BenchmarkFootprint in internal/topology for the
// testing.B.ReportMetric counterpart).
type footprintEntry struct {
	Family       string  `json:"family"`
	N            int     `json:"n"`
	Edges        int     `json:"edges"`
	BytesPerNode float64 `json:"graph_bytes_per_node"`
}

type millionEntry struct {
	Topology    string  `json:"topology"`
	N           int     `json:"n"`
	Algorithm   string  `json:"algorithm"`
	Shards      int     `json:"shards"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	StepNsPerOp float64 `json:"step_ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// kValueEntry is one row of the k-value batching series: the per-round
// cost of ONE width-k engine (k values reduced together) against k
// independent width-1 rounds of the same algorithm on the same graph.
// batched_speedup = k·scalar_ns / batched_ns; it is a same-machine
// ratio, so unlike raw ns it transfers across hosts and core counts,
// which is what lets the gate hold it to a floor.
type kValueEntry struct {
	Topology          string  `json:"topology"`
	N                 int     `json:"n"`
	Algorithm         string  `json:"algorithm"`
	K                 int     `json:"k"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	ScalarNsPerRound  float64 `json:"scalar_ns_per_round"`
	BatchedNsPerRound float64 `json:"batched_ns_per_round"`
	BatchedSpeedup    float64 `json:"batched_speedup"`
}

// dmgsBatchEntry compares the classic dmGS reduction schedule (2m−1
// scalar-family reductions per factorization) against the batched one
// (m fused width-(m−k) reductions) end to end: wall clock, reduction
// count and total gossip rounds. The round counts are deterministic for
// a fixed seed, so the gate re-derives and pins them exactly; the wall
// clock is the headline "k-batching makes QR cheaper" number.
type dmgsBatchEntry struct {
	Topology           string  `json:"topology"`
	N                  int     `json:"n"`
	M                  int     `json:"m"`
	Seed               int64   `json:"seed"`
	GoMaxProcs         int     `json:"gomaxprocs"`
	LegacyReductions   int     `json:"legacy_reductions"`
	BatchedReductions  int     `json:"batched_reductions"`
	LegacyTotalRounds  int     `json:"legacy_total_rounds"`
	BatchedTotalRounds int     `json:"batched_total_rounds"`
	LegacyMs           float64 `json:"legacy_ms"`
	BatchedMs          float64 `json:"batched_ms"`
	WallClockSpeedup   float64 `json:"wall_clock_speedup"`
}

// partitionEntry records the cut-edge quality of the two shard layouts
// on one topology family. Both partitioners are deterministic, so these
// numbers are exactly reproducible and the gate re-derives them; the
// contract under test is CacheAwareCut ≤ ContiguousCut on every graph.
// The max-cross columns report Stats.MaxCrossTraffic — the heaviest
// single (source → destination) outbox bucket, i.e. the worst per-bucket
// load any one parallel phase-2 delivery task inherits.
type partitionEntry struct {
	Topology           string `json:"topology"`
	N                  int    `json:"n"`
	Shards             int    `json:"shards"`
	TotalEdges         int    `json:"total_edges"`
	ContiguousCut      int    `json:"contiguous_cut_edges"`
	CacheAwareCut      int    `json:"cache_aware_cut_edges"`
	ContiguousMaxCross int    `json:"contiguous_max_cross_traffic"`
	CacheAwareMaxCross int    `json:"cache_aware_max_cross_traffic"`
	Strategy           string `json:"cache_aware_strategy"`
}

// phase2Entry is one row of the phase-2 delivery series: the same
// sharded PCF round with delivery forced inline on the merging goroutine
// (WithSerialDelivery — the pre-parallel behavior) against the default
// parallel per-destination delivery tasks. delivery_speedup =
// serial_ns / parallel_ns; both sides are measured on the SAME host, so
// the ratio transfers across machines the way the k-batching one does,
// and the gate holds it to a floor. On a single-core host the engine
// runs delivery inline either way, so the ratio sits near 1.0 there.
type phase2Entry struct {
	Topology         string  `json:"topology"`
	N                int     `json:"n"`
	Shards           int     `json:"shards"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	SerialNsPerOp    float64 `json:"serial_delivery_ns_per_op"`
	ParallelNsPerOp  float64 `json:"parallel_delivery_ns_per_op"`
	DeliverySpeedup  float64 `json:"delivery_speedup"`
	ParallelAllocsOp int64   `json:"parallel_allocs_per_op"`

	// Phase-time breakdown from a short flight-recorder run on the same
	// engine configuration: summed per-shard task time per round for the
	// two parallel fan-outs, plus the caller's summed barrier wait.
	// Wall-clock measurements, so informational (the gate does not pin
	// them) — they attribute the ns/op above to phases, which is what
	// turns a delivery_speedup regression into a diagnosis.
	ActivateNsPerRound float64 `json:"activate_ns_per_round,omitempty"`
	DeliverNsPerRound  float64 `json:"deliver_ns_per_round,omitempty"`
	BarrierNsPerRound  float64 `json:"barrier_wait_ns_per_round,omitempty"`
}

// snapshotCost records what a full-state checkpoint costs at
// million-node scale: Engine.Snapshot (flat-slice copies of the
// struct-of-arrays protocol state, RNG streams and in-flight messages)
// and checkpoint.Encode (the versioned binary codec), in ns per op,
// plus the encoded size. The encoded bytes are deterministic for a
// fixed seed, warmup and algorithm, so the gate can hold them to a
// tight bound while the timings get a memcpy-noise budget.
type snapshotCost struct {
	Topology        string  `json:"topology"`
	N               int     `json:"n"`
	Algorithm       string  `json:"algorithm"`
	Shards          int     `json:"shards"`
	WarmupRounds    int     `json:"warmup_rounds"`
	SnapshotNsPerOp float64 `json:"snapshot_ns_per_op"`
	EncodeNsPerOp   float64 `json:"encode_ns_per_op"`
	EncodedBytes    int     `json:"encoded_bytes"`
	BytesPerNode    float64 `json:"encoded_bytes_per_node"`
}

type benchReport struct {
	Description string `json:"description"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Note        string `json:"note,omitempty"`

	// HotPath is the original per-algorithm series on the n=1024
	// hypercube (sequential executor), with speedups against the
	// pre-optimization baselines.
	HotPathTopology string       `json:"hot_path_topology"`
	HotPathN        int          `json:"hot_path_n"`
	Benchmarks      []benchEntry `json:"benchmarks"`

	// NScaling compares the sequential and sharded executors on growing
	// hypercubes; MillionNode is one n=10^6 torus round; Footprint is
	// the CSR bytes/node table at n≈2^20.
	NScaling    []scalingEntry   `json:"n_scaling,omitempty"`
	MillionNode *millionEntry    `json:"million_node,omitempty"`
	Footprint   []footprintEntry `json:"memory_footprint,omitempty"`

	// KValueBatching measures reducing k values in one width-k run
	// against k scalar runs; DmgsBatching is the end-to-end dmGS
	// payoff; PartitionQuality is the deterministic cut-edge table of
	// the contiguous vs cache-aware shard layouts.
	KValueBatching   []kValueEntry    `json:"k_value_batching,omitempty"`
	DmgsBatching     *dmgsBatchEntry  `json:"dmgs_batching,omitempty"`
	PartitionQuality []partitionEntry `json:"partition_quality,omitempty"`

	// Phase2Delivery compares serial (inline) against parallel
	// per-destination phase-2 delivery on the same sharded engine,
	// recorded by -bench-phase2 and held to a ratio floor by -bench-gate.
	Phase2Delivery []phase2Entry `json:"phase2_delivery,omitempty"`

	// SnapshotCost is the checkpoint subsystem's price tag, recorded by
	// -bench-snapshot and re-checked by -bench-gate.
	SnapshotCost *snapshotCost `json:"snapshot_cost,omitempty"`
}

// bestOf3 runs fn as a testing.Benchmark three times and keeps the
// fastest per-op result — the standard noise-robust estimate on shared
// machines.
func bestOf3(fn func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(fn)
		if rep == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// benchRound measures one Step+Errors round of a warmed-up engine (the
// warmup lets inbox and free-list high-water marks settle, so the
// steady-state numbers are not polluted by one-time growth). 96 rounds:
// the P² delivery buckets of the parallel phase-2 executor settle their
// high-water marks more slowly than the old P flat outboxes did, and an
// unsettled warmup leaks amortized slice growth into allocs/op, which
// the gate pins.
func benchRound(e *sim.Engine) testing.BenchmarkResult {
	for r := 0; r < 96; r++ {
		e.Step()
		e.Errors()
	}
	return bestOf3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
			e.Errors()
		}
	})
}

// vecInputs builds n width-k input vectors whose component c is the
// scalar UniformInputs series with seed+c — k unrelated reductions
// riding in one engine, the batching scenario.
func vecInputs(n, k int, seed int64) []gossip.Value {
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = experiments.UniformInputs(n, seed+int64(c))
	}
	init := make([]gossip.Value, n)
	for i := range init {
		v := gossip.NewValue(k)
		for c := 0; c < k; c++ {
			v.X[c] = cols[c][i]
		}
		v.W = gossip.Average.InitialWeight(i)
		init[i] = v
	}
	return init
}

// measureKRound measures one Step+Errors round of a width-k PCF engine
// on g, in ns. Shared between -bench-json, -bench-gate and -bench-smoke
// so all three time exactly the same operation.
func measureKRound(g *topology.Graph, k int, seed int64) float64 {
	n := g.N()
	e := sim.New(g, experiments.PCF.Protos(n), vecInputs(n, k, seed), seed)
	defer e.Close()
	return float64(benchRound(e).NsPerOp())
}

// measureDmgsBatching factorizes one fixed 64×8 matrix on the
// 6-hypercube with the classic and the batched dmGS schedule (best of
// three wall-clock runs each). The reduction and round counts are
// seed-deterministic, which is what lets the gate pin them bitwise.
func measureDmgsBatching(seed int64) *dmgsBatchEntry {
	g := topology.Hypercube(6)
	const m = 8
	v := linalg.Random(g.N(), m, seed)
	run := func(batched bool) (dmgs.Result, float64) {
		var res dmgs.Result
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			cfg := dmgs.Config{
				Topology:    g,
				NewProtocol: func() gossip.Protocol { return core.NewEfficient() },
				Eps:         1e-15,
				MaxRounds:   3000,
				StallRounds: 60,
				Seed:        seed,
				Batched:     batched,
			}
			start := time.Now()
			r, err := dmgs.Factorize(v, cfg)
			if err != nil {
				fatal(err)
			}
			if el := float64(time.Since(start).Nanoseconds()); el < best {
				best = el
				res = r
			}
		}
		return res, best
	}
	legacy, legacyNs := run(false)
	batched, batchedNs := run(true)
	return &dmgsBatchEntry{
		Topology:           g.Name(),
		N:                  g.N(),
		M:                  m,
		Seed:               seed,
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		LegacyReductions:   legacy.Reductions,
		BatchedReductions:  batched.Reductions,
		LegacyTotalRounds:  legacy.TotalRounds,
		BatchedTotalRounds: batched.TotalRounds,
		LegacyMs:           legacyNs / 1e6,
		BatchedMs:          batchedNs / 1e6,
		WallClockSpeedup:   legacyNs / batchedNs,
	}
}

// partitionQualityRows derives the deterministic cut-edge table for the
// families where layout matters: lattices and trees, where the BFS
// graph-growing pass beats contiguous id ranges, plus the hypercube,
// where contiguous blocks are already subcubes and CacheAware must fall
// back to them rather than make things worse.
func partitionQualityRows(shards int) []partitionEntry {
	var rows []partitionEntry
	for _, g := range []*topology.Graph{
		topology.Hypercube(10),
		topology.Grid2D(256, 256),
		topology.Torus2D(128, 128),
		topology.BinaryTree(1<<15 - 1),
	} {
		contig := topology.Contiguous(g, shards)
		ca := topology.CacheAware(g, shards)
		rows = append(rows, partitionEntry{
			Topology:           g.Name(),
			N:                  g.N(),
			Shards:             shards,
			TotalEdges:         contig.Stats.TotalEdges,
			ContiguousCut:      contig.Stats.CutEdges,
			CacheAwareCut:      ca.Stats.CutEdges,
			ContiguousMaxCross: contig.Stats.MaxCrossTraffic,
			CacheAwareMaxCross: ca.Stats.MaxCrossTraffic,
			Strategy:           ca.Stats.Strategy,
		})
	}
	return rows
}

// writeBenchJSON measures the simulator hot path — the per-algorithm
// series on the n=1024 hypercube, the sequential-vs-sharded n-scaling
// series, one n=10^6 torus round, and the CSR bytes/node table — and
// writes the results to the given JSON file.
func writeBenchJSON(path string, seed int64, shards int) {
	g := topology.Hypercube(10)
	rep := benchReport{
		Description:     "simulator hot path: one synchronous round + oracle error scan per op",
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		HotPathTopology: g.Name(),
		HotPathN:        g.N(),
	}
	// Re-recording the hot path must not silently drop the baselines
	// recorded by the other subcommands (-bench-snapshot, -bench-phase2).
	if raw, err := os.ReadFile(path); err == nil {
		var old benchReport
		if json.Unmarshal(raw, &old) == nil {
			rep.SnapshotCost = old.SnapshotCost
			rep.Phase2Delivery = old.Phase2Delivery
		}
	}
	if rep.GoMaxProcs < shards {
		rep.Note = fmt.Sprintf(
			"recorded with GOMAXPROCS=%d < %d shards: shard workers cannot run concurrently, so sharded_speedup reflects only the phase-split model's sequential gains (no shuffle pass, ascending-id streaming); rerun -bench-json on a multicore host to measure parallel scaling",
			rep.GoMaxProcs, shards)
	}
	inputs := experiments.UniformInputs(g.N(), seed)
	for _, al := range []experiments.Algorithm{
		experiments.PCF, experiments.PCFRobust, experiments.PushFlow, experiments.PushSum,
	} {
		e := sim.NewScalar(g, al.Protos(g.N()), inputs, gossip.Average, seed)
		best := benchRound(e)
		ent := benchEntry{
			Name:        al.Name,
			NsPerOp:     float64(best.NsPerOp()),
			BytesPerOp:  best.AllocedBytesPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
		}
		if base, ok := simBaselines[al.Name]; ok {
			ent.BaselineNs = base
			ent.Speedup = base / ent.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, ent)
		fmt.Fprintf(os.Stderr, "bench %-10s %10.0f ns/op  %3d allocs/op  %.2fx\n",
			al.Name, ent.NsPerOp, ent.AllocsPerOp, ent.Speedup)
	}

	// n-scaling: the same PCF round, sequential vs sharded, on growing
	// hypercubes up to n = 2^17.
	for _, dim := range []int{10, 12, 14, 17} {
		sg := topology.Hypercube(dim)
		n := sg.N()
		in := experiments.UniformInputs(n, seed)
		seq := benchRound(sim.NewScalar(sg, experiments.PCF.Protos(n), in, gossip.Average, seed))
		shd := benchRound(sim.NewScalar(sg, experiments.PCF.Protos(n), in, gossip.Average, seed,
			sim.WithShards(shards)))
		ent := scalingEntry{
			Topology:          sg.Name(),
			N:                 n,
			Shards:            shards,
			GoMaxProcs:        rep.GoMaxProcs,
			SequentialNsPerOp: float64(seq.NsPerOp()),
			ShardedNsPerOp:    float64(shd.NsPerOp()),
			Speedup:           float64(seq.NsPerOp()) / float64(shd.NsPerOp()),
			ShardedAllocsOp:   shd.AllocsPerOp(),
		}
		rep.NScaling = append(rep.NScaling, ent)
		fmt.Fprintf(os.Stderr, "scale %-16s n=%-7d seq %12.0f ns/op  sharded(%d) %12.0f ns/op  %.2fx\n",
			ent.Topology, n, ent.SequentialNsPerOp, shards, ent.ShardedNsPerOp, ent.Speedup)
	}

	// k-value batching: one width-k round vs k width-1 rounds on the
	// n=1024 hypercube. The scalar reference is measured once through
	// the same sim.New construction path as the batched engines.
	kg := topology.Hypercube(10)
	scalarNs := measureKRound(kg, 1, seed)
	for _, k := range []int{1, 4, 16} {
		batchedNs := scalarNs
		if k > 1 {
			batchedNs = measureKRound(kg, k, seed)
		}
		ent := kValueEntry{
			Topology:          kg.Name(),
			N:                 kg.N(),
			Algorithm:         experiments.PCF.Name,
			K:                 k,
			GoMaxProcs:        rep.GoMaxProcs,
			ScalarNsPerRound:  scalarNs,
			BatchedNsPerRound: batchedNs,
			BatchedSpeedup:    float64(k) * scalarNs / batchedNs,
		}
		rep.KValueBatching = append(rep.KValueBatching, ent)
		fmt.Fprintf(os.Stderr, "k-batch k=%-3d scalar %10.0f ns/round  batched %10.0f ns/round  %.2fx\n",
			k, ent.ScalarNsPerRound, ent.BatchedNsPerRound, ent.BatchedSpeedup)
	}

	// End-to-end dmGS: classic 2m−1-reduction schedule vs m fused ones.
	rep.DmgsBatching = measureDmgsBatching(seed)
	db := rep.DmgsBatching
	fmt.Fprintf(os.Stderr, "dmgs %s m=%d: legacy %d reductions/%d rounds/%.0f ms, batched %d/%d/%.0f ms, %.2fx\n",
		db.Topology, db.M, db.LegacyReductions, db.LegacyTotalRounds, db.LegacyMs,
		db.BatchedReductions, db.BatchedTotalRounds, db.BatchedMs, db.WallClockSpeedup)

	// Deterministic partition-quality table.
	rep.PartitionQuality = partitionQualityRows(shards)
	for _, p := range rep.PartitionQuality {
		fmt.Fprintf(os.Stderr, "partition %-18s shards=%d cut %6d (contiguous) vs %6d (%s)\n",
			p.Topology, p.Shards, p.ContiguousCut, p.CacheAwareCut, p.Strategy)
	}

	// Million-node round: one PCF Step+Errors on the 100x100x100 torus.
	mg := topology.Torus3D(100, 100, 100)
	mn := mg.N()
	me := sim.NewScalar(mg, experiments.PCF.Protos(mn), experiments.UniformInputs(mn, seed),
		gossip.Average, seed, sim.WithShards(shards))
	mr := benchRound(me)
	rep.MillionNode = &millionEntry{
		Topology:    mg.Name(),
		N:           mn,
		Algorithm:   experiments.PCF.Name,
		Shards:      shards,
		GoMaxProcs:  rep.GoMaxProcs,
		StepNsPerOp: float64(mr.NsPerOp()),
		AllocsPerOp: mr.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "million-node %s: %.1f ms/round, %d allocs/op\n",
		mg.Name(), rep.MillionNode.StepNsPerOp/1e6, mr.AllocsPerOp())

	// CSR footprint at n ≈ 2^20 per topology family.
	for _, fg := range []*topology.Graph{
		topology.Hypercube(20),
		topology.Torus3D(128, 128, 64),
		topology.Grid2D(1024, 1024),
		topology.Ring(1 << 20),
		topology.Path(1 << 20),
	} {
		n := fg.N()
		edges := 0
		for i := 0; i < n; i++ {
			edges += fg.Degree(i)
		}
		edges /= 2
		rep.Footprint = append(rep.Footprint, footprintEntry{
			Family:       fg.Name(),
			N:            n,
			Edges:        edges,
			BytesPerNode: float64(fg.FootprintBytes()) / float64(n),
		})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// snapshotWarmupRounds is how many rounds the engine runs before the
// snapshot is taken. Kept small and fixed so the in-flight message
// state — and with it the encoded byte count — is identical between the
// recording host and the gate.
const snapshotWarmupRounds = 8

// measureSnapshotCost benchmarks Engine.Snapshot and checkpoint.Encode
// on the million-node torus after a fixed warmup. Shared between
// -bench-snapshot (recording) and -bench-gate (regression check) so
// both measure exactly the same operation.
func measureSnapshotCost(seed int64, shards int) *snapshotCost {
	runtime.GC() // shed any earlier benchmark's heap before the ~400 MB working set
	g := topology.Torus3D(100, 100, 100)
	n := g.N()
	e := sim.NewScalar(g, experiments.PCF.Protos(n), experiments.UniformInputs(n, seed),
		gossip.Average, seed, sim.WithShards(shards))
	for r := 0; r < snapshotWarmupRounds; r++ {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		fatal(err)
	}
	snapRes := bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if snap, err = e.Snapshot(); err != nil {
				fatal(err)
			}
		}
	})
	var blob []byte
	encRes := bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blob = checkpoint.Encode(&checkpoint.Checkpoint{Snap: snap})
		}
	})
	return &snapshotCost{
		Topology:        g.Name(),
		N:               n,
		Algorithm:       experiments.PCF.Name,
		Shards:          shards,
		WarmupRounds:    snapshotWarmupRounds,
		SnapshotNsPerOp: float64(snapRes.NsPerOp()),
		EncodeNsPerOp:   float64(encRes.NsPerOp()),
		EncodedBytes:    len(blob),
		BytesPerNode:    float64(len(blob)) / float64(n),
	}
}

// runBenchSnapshot measures the million-node snapshot cost and merges
// it into the existing bench JSON, leaving every other recorded number
// untouched (the hot-path and scaling baselines were recorded
// separately and must not shift when only the checkpoint subsystem is
// re-benchmarked).
func runBenchSnapshot(path string, seed int64, shards int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	sc := measureSnapshotCost(seed, shards)
	rep.SnapshotCost = sc
	fmt.Fprintf(os.Stderr, "snapshot %s n=%d: Snapshot %.1f ms, Encode %.1f ms, %d bytes (%.1f B/node)\n",
		sc.Topology, sc.N, sc.SnapshotNsPerOp/1e6, sc.EncodeNsPerOp/1e6, sc.EncodedBytes, sc.BytesPerNode)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// measurePhase2Row measures one topology's sharded PCF round twice —
// delivery forced serial, then the default parallel per-destination
// tasks — and returns the row. The engines are built and torn down one
// at a time (with a GC in between) so the 2^20 row's two ~GB working
// sets never coexist.
func measurePhase2Row(g *topology.Graph, seed int64, shards int) phase2Entry {
	n := g.N()
	measure := func(opts ...sim.EngineOption) testing.BenchmarkResult {
		runtime.GC()
		in := experiments.UniformInputs(n, seed)
		e := sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed,
			append([]sim.EngineOption{sim.WithShards(shards)}, opts...)...)
		defer e.Close()
		return benchRound(e)
	}
	serial := measure(sim.WithSerialDelivery())
	par := measure()
	row := phase2Entry{
		Topology:         g.Name(),
		N:                n,
		Shards:           shards,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		SerialNsPerOp:    float64(serial.NsPerOp()),
		ParallelNsPerOp:  float64(par.NsPerOp()),
		DeliverySpeedup:  float64(serial.NsPerOp()) / float64(par.NsPerOp()),
		ParallelAllocsOp: par.AllocsPerOp(),
	}
	// Short flight-recorder run for the phase breakdown. Separate from
	// the benchmark engines above so timing never contaminates the
	// gated ns/op numbers.
	const breakdownRounds = 32
	runtime.GC()
	rec := metrics.New(metrics.Config{Shards: shards, Interval: 1 << 30, Timing: true})
	e := sim.NewScalar(g, experiments.PCF.Protos(n), experiments.UniformInputs(n, seed),
		gossip.Average, seed, sim.WithShards(shards))
	e.SetMetrics(rec)
	for r := 0; r < breakdownRounds; r++ {
		e.Step()
	}
	e.Close()
	merged := rec.MergedTiming()
	row.ActivateNsPerRound = float64(merged.Hist(metrics.PhaseActivate).SumNs) / breakdownRounds
	row.DeliverNsPerRound = float64(merged.Hist(metrics.PhaseDeliver).SumNs) / breakdownRounds
	row.BarrierNsPerRound = float64(merged.Hist(metrics.PhaseBarrierActivate).SumNs+
		merged.Hist(metrics.PhaseBarrierDeliver).SumNs) / breakdownRounds
	return row
}

// phase2Families are the topologies of the phase-2 delivery series: a
// 2^15 hypercube (small enough for the gate to re-measure) and a 2^20
// torus (the cross-shard-heavy row where bucketed delivery pays off).
func phase2Families() []*topology.Graph {
	return []*topology.Graph{
		topology.Hypercube(15),
		topology.Torus2D(1024, 1024),
	}
}

// runBenchPhase2 measures the serial-vs-parallel phase-2 delivery series
// and merges it into the existing bench JSON. It also regenerates the
// deterministic partition-quality table — the max-cross-traffic columns
// belong to the same delivery work and the gate compares those rows
// bitwise, so the two sections are recorded together.
func runBenchPhase2(path string, seed int64, shards int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	rep.Phase2Delivery = nil
	for _, g := range phase2Families() {
		row := measurePhase2Row(g, seed, shards)
		rep.Phase2Delivery = append(rep.Phase2Delivery, row)
		fmt.Fprintf(os.Stderr, "phase2 %-16s n=%-8d serial %12.0f ns/op  parallel(%d) %12.0f ns/op  %.2fx\n",
			row.Topology, row.N, row.SerialNsPerOp, shards, row.ParallelNsPerOp, row.DeliverySpeedup)
	}
	rep.PartitionQuality = partitionQualityRows(shards)
	for _, p := range rep.PartitionQuality {
		fmt.Fprintf(os.Stderr, "partition %-18s shards=%d cut %6d/%6d  max-cross %5d/%5d (%s)\n",
			p.Topology, p.Shards, p.ContiguousCut, p.CacheAwareCut,
			p.ContiguousMaxCross, p.CacheAwareMaxCross, p.Strategy)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

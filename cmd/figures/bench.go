package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// simBaselines are the pre-optimization reference timings of the
// simulator hot path (one synchronous round plus the oracle error scan
// on an n=1024 hypercube, Intel Xeon @ 2.70GHz), recorded before the
// allocation-free fast path and dense-slice protocol state landed.
// Speedups in BENCH_sim.json are computed against these.
var simBaselines = map[string]float64{
	"PCF":        606251,
	"PCF-robust": 892518,
	"PF":         632415,
	"push-sum":   233779,
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BaselineNs  float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
}

type benchReport struct {
	Description string       `json:"description"`
	Topology    string       `json:"topology"`
	N           int          `json:"n"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// writeBenchJSON measures one Step+Errors round of every algorithm on
// the n=1024 hypercube via testing.Benchmark and writes the results —
// with speedups against the recorded pre-optimization baselines — to
// the given JSON file.
func writeBenchJSON(path string, seed int64) {
	g := topology.Hypercube(10)
	inputs := experiments.UniformInputs(g.N(), seed)
	rep := benchReport{
		Description: "simulator hot path: one synchronous round + oracle error scan per op",
		Topology:    g.Name(),
		N:           g.N(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, al := range []experiments.Algorithm{
		experiments.PCF, experiments.PCFRobust, experiments.PushFlow, experiments.PushSum,
	} {
		e := sim.NewScalar(g, al.Protos(g.N()), inputs, gossip.Average, seed)
		// Best of three 1-second repetitions: the per-op minimum is the
		// standard noise-robust estimate on shared machines.
		var best testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e.Step()
					e.Errors()
				}
			})
			if rep == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		ent := benchEntry{
			Name:        al.Name,
			NsPerOp:     float64(best.NsPerOp()),
			BytesPerOp:  best.AllocedBytesPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
		}
		if base, ok := simBaselines[al.Name]; ok {
			ent.BaselineNs = base
			ent.Speedup = base / ent.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, ent)
		fmt.Fprintf(os.Stderr, "bench %-10s %10.0f ns/op  %3d allocs/op  %.2fx\n",
			al.Name, ent.NsPerOp, ent.AllocsPerOp, ent.Speedup)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

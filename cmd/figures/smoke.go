package main

import (
	"fmt"
	"os"
	"runtime"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// runBenchSmoke is the fast CI check for the multicore/batching work —
// seconds, not minutes, and every assertion is machine-independent so
// it can run unpinned on any runner:
//
//  1. Layout identity: the same width-4 run on WithShards(1), contiguous
//     WithShards(4) and the cache-aware partition must agree bitwise on
//     every node and component after a fixed number of rounds.
//  2. k-value batching: one width-16 round must beat 16 scalar rounds
//     by ≥1.5× (same-host ratio).
//  3. Partition contract: on every bench family the cache-aware layout
//     validates against the cursor-merge invariants and never cuts more
//     edges than the contiguous baseline.
//  4. Delivery-path identity: the same run with phase-2 delivery forced
//     serial (WithSerialDelivery) and with the default parallel
//     per-destination tasks — under per-link loss and a cache-aware
//     layout — must agree bitwise on every node, so the parallel path
//     is provably a pure scheduling change on this very machine.
func runBenchSmoke(seed int64) {
	failed := false
	fmt.Printf("bench-smoke (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))

	// 1. Cross-layout differential at width 4 on a lattice, where the
	// BFS partitioner actually rearranges the shards.
	g := topology.Grid2D(32, 32)
	n := g.N()
	const rounds = 50
	const width = 4
	layouts := []struct {
		name string
		opts []sim.EngineOption
	}{
		{"shards=1", []sim.EngineOption{sim.WithShards(1)}},
		{"contiguous(4)", []sim.EngineOption{sim.WithShards(4)}},
		{"cache-aware(4)", []sim.EngineOption{sim.WithPartition(topology.CacheAware(g, 4))}},
	}
	var ref [][]float64
	for _, layout := range layouts {
		e := sim.New(g, experiments.PCF.Protos(n), vecInputs(n, width, seed), seed, layout.opts...)
		for r := 0; r < rounds; r++ {
			e.Step()
		}
		est := make([][]float64, n)
		for i := 0; i < n; i++ {
			est[i] = e.Protocol(i).Estimate()
		}
		e.Close()
		if ref == nil {
			ref = est
			continue
		}
		for i := 0; i < n && !failed; i++ {
			for c := 0; c < width; c++ {
				if est[i][c] != ref[i][c] {
					fmt.Printf("FAIL: layout %s deviates from %s at node %d component %d: %.17g vs %.17g\n",
						layout.name, layouts[0].name, i, c, est[i][c], ref[i][c])
					failed = true
					break
				}
			}
		}
	}
	if !failed {
		fmt.Printf("  layout identity: %d layouts bitwise equal over %d width-%d rounds on %s\n",
			len(layouts), rounds, width, g.Name())
	}

	// 2. Batched-round speedup on a small hypercube.
	kg := topology.Hypercube(8)
	const k = 16
	scalarNs := measureKRound(kg, 1, seed)
	batchedNs := measureKRound(kg, k, seed)
	speedup := float64(k) * scalarNs / batchedNs
	fmt.Printf("  k-value batching k=%d on %s: %.2fx (scalar %.0f ns/round, batched %.0f ns/round)\n",
		k, kg.Name(), speedup, scalarNs, batchedNs)
	if speedup < kValueGateFloor {
		fmt.Printf("FAIL: width-%d round only %.2fx faster than %d scalar rounds (floor %.2fx)\n",
			k, speedup, k, kValueGateFloor)
		failed = true
	}

	// 3. Partitioner contract on the bench families.
	for _, row := range partitionQualityRows(8) {
		if row.CacheAwareCut > row.ContiguousCut {
			fmt.Printf("FAIL: cache-aware layout cuts %d edges on %s, contiguous cuts %d\n",
				row.CacheAwareCut, row.Topology, row.ContiguousCut)
			failed = true
		}
	}
	for _, pg := range []*topology.Graph{g, kg, topology.BinaryTree(127)} {
		for _, shards := range []int{2, 3, 8} {
			pt := topology.CacheAware(pg, shards)
			if err := pt.Validate(pg); err != nil {
				fmt.Printf("FAIL: cache-aware partition of %s into %d shards invalid: %v\n",
					pg.Name(), shards, err)
				failed = true
			}
		}
	}
	if !failed {
		fmt.Println("  partition contract: validated, cache-aware cut ≤ contiguous on every family")
	}

	// 4. Serial-vs-parallel delivery differential under per-link loss on
	// a cache-aware layout — the configuration where the parallel path's
	// per-destination tasks, k-way bucket merges and per-link loss
	// streams are all load-bearing. Loss rates go on a band of grid
	// links that crosses shard boundaries so dropped messages exercise
	// the per-destination recycling too.
	var dref [][]float64
	for _, mode := range []struct {
		name string
		opts []sim.EngineOption
	}{
		{"serial delivery", []sim.EngineOption{sim.WithPartition(topology.CacheAware(g, 4)), sim.WithSerialDelivery()}},
		{"parallel delivery", []sim.EngineOption{sim.WithPartition(topology.CacheAware(g, 4))}},
	} {
		e := sim.New(g, experiments.PCF.Protos(n), vecInputs(n, width, seed), seed, mode.opts...)
		for i := 40; i < 72; i++ {
			if i%32 == 31 {
				continue // row boundary: (i, i+1) is not a grid edge
			}
			e.SetLinkLoss(i, i+1, 0.3)
		}
		for r := 0; r < rounds; r++ {
			e.Step()
		}
		est := make([][]float64, n)
		for i := 0; i < n; i++ {
			est[i] = e.Protocol(i).Estimate()
		}
		e.Close()
		if dref == nil {
			dref = est
			continue
		}
		mismatch := false
		for i := 0; i < n && !mismatch; i++ {
			for c := 0; c < width; c++ {
				if est[i][c] != dref[i][c] {
					fmt.Printf("FAIL: parallel delivery deviates from serial at node %d component %d: %.17g vs %.17g\n",
						i, c, est[i][c], dref[i][c])
					failed = true
					mismatch = true
					break
				}
			}
		}
	}
	if dref != nil && !failed {
		fmt.Printf("  delivery identity: serial and parallel phase-2 bitwise equal over %d lossy width-%d rounds on %s\n",
			rounds, width, g.Name())
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("bench-smoke OK")
}

package main

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// gateTolerance is the allowed ns/op regression of the sharded PCF
// round against the recorded baseline. The metrics layer must be free
// when disabled (≤1% by design; see DESIGN.md), so a 5% gate leaves
// room for CI scheduling noise while still catching any real cost
// creeping onto the hot path.
const gateTolerance = 1.05

// snapshotGateTolerance is the ns/op budget for the million-node
// snapshot+encode cost. The operation is memory-bandwidth-bound, so the
// sequential-PCF compute calibration is only applied as leniency (slower
// machine ⇒ bigger budget, never smaller) and the tolerance is a loose
// 2× — GC pressure from the ~400 MB working set makes the timing far
// noisier than the hot-path round, while the regressions the gate
// exists to catch (per-element boxing, reflection, an allocation per
// node) cost 5–10×. The byte-size check below is the tight one: the
// encoding is deterministic, so any growth is a real format change.
const snapshotGateTolerance = 2.0

// runBenchGate is the CI regression gate: it re-measures the largest
// n-scaling point of the recorded baseline (the sharded PCF round at
// n = 2^17, metrics disabled — the default engine state) and exits
// non-zero when ns/op regresses more than 5% or allocs/op exceed the
// recorded count.
//
// Gate machines differ from the recording machine, so the baseline is
// first normalized by machine speed: the sequential PCF round at the
// same n is measured alongside and the recorded sharded ns/op is scaled
// by measured_seq / recorded_seq before comparing. That ratio captures
// single-core speed; extra cores only make the measured sharded round
// faster, so the normalization errs toward leniency on big machines and
// never produces a false failure from hardware alone.
func runBenchGate(path string, seed int64) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	var base *scalingEntry
	for i := range rep.NScaling {
		if base == nil || rep.NScaling[i].N > base.N {
			base = &rep.NScaling[i]
		}
	}
	if base == nil {
		fatal(fmt.Errorf("%s has no n_scaling series to gate against", path))
	}
	if base.N&(base.N-1) != 0 {
		fatal(fmt.Errorf("%s: n_scaling n=%d is not a hypercube size", path, base.N))
	}
	dim := bits.Len(uint(base.N)) - 1
	g := topology.Hypercube(dim)
	n := g.N()
	in := experiments.UniformInputs(n, seed)

	seq := benchRound(sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed))
	shd := benchRound(sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed,
		sim.WithShards(base.Shards)))

	scale := float64(seq.NsPerOp()) / base.SequentialNsPerOp
	allowed := base.ShardedNsPerOp * scale * gateTolerance
	measured := float64(shd.NsPerOp())
	fmt.Printf("bench-gate %s n=%d shards=%d (metrics disabled)\n", g.Name(), n, base.Shards)
	fmt.Printf("  sequential calibration: measured %.0f ns/op vs recorded %.0f (machine scale %.3f)\n",
		float64(seq.NsPerOp()), base.SequentialNsPerOp, scale)
	fmt.Printf("  sharded round: measured %.0f ns/op, allowed %.0f (recorded %.0f × scale × %.2f)\n",
		measured, allowed, base.ShardedNsPerOp, gateTolerance)
	fmt.Printf("  allocs/op: measured %d, recorded %d\n", shd.AllocsPerOp(), base.ShardedAllocsOp)

	failed := false
	if measured > allowed {
		fmt.Printf("FAIL: sharded PCF round regressed %.1f%% over the normalized baseline (gate: %.0f%%)\n",
			100*(measured/(base.ShardedNsPerOp*scale)-1), 100*(gateTolerance-1))
		failed = true
	}
	if shd.AllocsPerOp() > base.ShardedAllocsOp {
		fmt.Printf("FAIL: sharded PCF round allocates %d/op, baseline %d/op\n",
			shd.AllocsPerOp(), base.ShardedAllocsOp)
		failed = true
	}
	if sc := rep.SnapshotCost; sc != nil {
		m := measureSnapshotCost(seed, sc.Shards)
		recorded := sc.SnapshotNsPerOp + sc.EncodeNsPerOp
		measured := m.SnapshotNsPerOp + m.EncodeNsPerOp
		memScale := scale
		if memScale < 1 {
			memScale = 1
		}
		allowedNs := recorded * memScale * snapshotGateTolerance
		fmt.Printf("  snapshot cost %s n=%d: measured %.1f ms (Snapshot %.1f + Encode %.1f), allowed %.1f ms\n",
			m.Topology, m.N, measured/1e6, m.SnapshotNsPerOp/1e6, m.EncodeNsPerOp/1e6, allowedNs/1e6)
		fmt.Printf("  snapshot size: measured %d bytes (%.1f B/node), recorded %d\n",
			m.EncodedBytes, m.BytesPerNode, sc.EncodedBytes)
		if measured > allowedNs {
			fmt.Printf("FAIL: million-node snapshot cost regressed %.1f%% over the normalized baseline (gate: %.0f%%)\n",
				100*(measured/(recorded*memScale)-1), 100*(snapshotGateTolerance-1))
			failed = true
		}
		if float64(m.EncodedBytes) > float64(sc.EncodedBytes)*gateTolerance {
			fmt.Printf("FAIL: encoded snapshot grew to %d bytes, baseline %d (gate: %.0f%%)\n",
				m.EncodedBytes, sc.EncodedBytes, 100*(gateTolerance-1))
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("bench-gate OK")
}

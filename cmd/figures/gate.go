package main

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"runtime"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// gateTolerance is the allowed ns/op regression of the sharded PCF
// round against the recorded baseline. The metrics layer must be free
// when disabled (≤1% by design; see DESIGN.md), so a 5% gate leaves
// room for CI scheduling noise while still catching any real cost
// creeping onto the hot path.
const gateTolerance = 1.05

// snapshotGateTolerance is the ns/op budget for the million-node
// snapshot+encode cost. The operation is memory-bandwidth-bound, so the
// sequential-PCF compute calibration is only applied as leniency (slower
// machine ⇒ bigger budget, never smaller) and the tolerance is a loose
// 2× — GC pressure from the ~400 MB working set makes the timing far
// noisier than the hot-path round, while the regressions the gate
// exists to catch (per-element boxing, reflection, an allocation per
// node) cost 5–10×. The byte-size check below is the tight one: the
// encoding is deterministic, so any growth is a real format change.
const snapshotGateTolerance = 2.0

// kValueGateFloor is the minimum batched speedup (k·scalar_ns /
// batched_ns) the largest recorded k row must reproduce on the gate
// machine. The ratio compares two measurements taken on the SAME host,
// so unlike raw ns it is machine-independent: a width-16 round doing
// 16 reductions' worth of work must beat 16 separate rounds by at
// least this factor on any hardware, or per-value overhead has crept
// into the batched path.
const kValueGateFloor = 1.5

// kValueDriftTolerance bounds how far the measured batched speedup may
// fall below the recorded one before the gate fails (ratio-of-ratios;
// loose because best-of-3 ratios still carry scheduling noise).
const kValueDriftTolerance = 1.4

// phase2GateFloor is the minimum delivery speedup (serial_ns /
// parallel_ns, both sides measured on the gate host) the re-measured
// phase-2 row must reach. Like the k-value floor it is a same-host
// ratio and therefore machine-independent — but unlike batching, the
// parallel win depends on cores: on a single-core host the engine runs
// delivery inline either way and the honest ratio is ~1.0. The floor is
// therefore set just below parity; its job is to catch the parallel
// path growing overhead that makes it *slower* than the serial merge it
// replaced, not to demand scaling the hardware can't give.
const phase2GateFloor = 0.85

// phase2DriftTolerance bounds how far the measured delivery speedup may
// fall below the recorded one (same ratio-of-ratios role and looseness
// as kValueDriftTolerance). On a multicore recorder this is what turns
// the floor into a real scaling gate: a recorded 2.8x row gates at 2x.
const phase2DriftTolerance = 1.4

// timingOffTolerance bounds the sharded round with a timing-off
// recorder attached against the nil-recorder round from the same gate
// run. The flight recorder's contract is that its single e.flight nil
// check costs nothing when timing is off, so the only remaining cost is
// the counter banks — a few percent; the budget is a loose same-host
// ratio because both sides are single measurements. Allocations are the
// hard edge: the timing-off round must stay at the recorded allocs/op.
const timingOffTolerance = 1.4

// runBenchGate is the CI regression gate: it re-measures the largest
// n-scaling point of the recorded baseline (the sharded PCF round at
// n = 2^17, metrics disabled — the default engine state) and exits
// non-zero when ns/op regresses more than 5% or allocs/op exceed the
// recorded count.
//
// Gate machines differ from the recording machine, so the baseline is
// first normalized by machine speed: the sequential PCF round at the
// same n is measured alongside and the recorded sharded ns/op is scaled
// by measured_seq / recorded_seq before comparing. That ratio captures
// single-core speed; extra cores only make the measured sharded round
// faster, so the normalization errs toward leniency on big machines and
// never produces a false failure from hardware alone.
func runBenchGate(path string, seed int64) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	var base *scalingEntry
	for i := range rep.NScaling {
		if base == nil || rep.NScaling[i].N > base.N {
			base = &rep.NScaling[i]
		}
	}
	if base == nil {
		fatal(fmt.Errorf("%s has no n_scaling series to gate against", path))
	}
	if base.N&(base.N-1) != 0 {
		fatal(fmt.Errorf("%s: n_scaling n=%d is not a hypercube size", path, base.N))
	}
	dim := bits.Len(uint(base.N)) - 1
	g := topology.Hypercube(dim)
	n := g.N()
	in := experiments.UniformInputs(n, seed)

	seq := benchRound(sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed))
	shd := benchRound(sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed,
		sim.WithShards(base.Shards)))

	scale := float64(seq.NsPerOp()) / base.SequentialNsPerOp
	allowed := base.ShardedNsPerOp * scale * gateTolerance
	measured := float64(shd.NsPerOp())
	fmt.Printf("bench-gate %s n=%d shards=%d (metrics disabled)\n", g.Name(), n, base.Shards)
	// The sequential calibration captures single-core speed only. When
	// the baseline was recorded on more usable cores than this host has,
	// its sharded round genuinely ran in parallel and ours cannot; widen
	// the budget by the lost parallel-slot ratio (leniency only — extra
	// cores on the gate machine never tighten the gate).
	if base.GoMaxProcs > 0 {
		recordedSlots := min(base.GoMaxProcs, base.Shards)
		gateSlots := min(runtime.GOMAXPROCS(0), base.Shards)
		if gateSlots < recordedSlots {
			allowed *= float64(recordedSlots) / float64(gateSlots)
			fmt.Printf("  multicore leniency: baseline recorded with %d shard slots, gate host has %d — budget ×%.2f\n",
				recordedSlots, gateSlots, float64(recordedSlots)/float64(gateSlots))
		}
	}
	fmt.Printf("  sequential calibration: measured %.0f ns/op vs recorded %.0f (machine scale %.3f)\n",
		float64(seq.NsPerOp()), base.SequentialNsPerOp, scale)
	fmt.Printf("  sharded round: measured %.0f ns/op, allowed %.0f (recorded %.0f × scale × %.2f)\n",
		measured, allowed, base.ShardedNsPerOp, gateTolerance)
	fmt.Printf("  allocs/op: measured %d, recorded %d\n", shd.AllocsPerOp(), base.ShardedAllocsOp)

	failed := false
	if measured > allowed {
		fmt.Printf("FAIL: sharded PCF round regressed %.1f%% over the normalized baseline (gate: %.0f%%)\n",
			100*(measured/(base.ShardedNsPerOp*scale)-1), 100*(gateTolerance-1))
		failed = true
	}
	if shd.AllocsPerOp() > base.ShardedAllocsOp {
		fmt.Printf("FAIL: sharded PCF round allocates %d/op, baseline %d/op\n",
			shd.AllocsPerOp(), base.ShardedAllocsOp)
		failed = true
	}
	// Flight-recorder zero-overhead gate: the same sharded round with a
	// recorder attached but timing OFF (the default observation state)
	// must match the nil-recorder round just measured — same allocs/op,
	// ns/op within a loose same-host ratio. This is the hot path every
	// -metrics run takes, so a regression here is a regression for every
	// observed experiment.
	offRec := metrics.New(metrics.Config{Shards: base.Shards, Interval: 1 << 30})
	offEng := sim.NewScalar(g, experiments.PCF.Protos(n), in, gossip.Average, seed,
		sim.WithShards(base.Shards))
	offEng.SetMetrics(offRec)
	off := benchRound(offEng)
	offAllowed := measured * timingOffTolerance
	maxOffAllocs := max(base.ShardedAllocsOp, 1)
	fmt.Printf("  timing-off recorder: measured %.0f ns/op (nil-recorder %.0f, budget ×%.2f), %d allocs/op (max %d)\n",
		float64(off.NsPerOp()), measured, timingOffTolerance, off.AllocsPerOp(), maxOffAllocs)
	if float64(off.NsPerOp()) > offAllowed {
		fmt.Printf("FAIL: sharded round with a timing-off recorder costs %.0f ns/op, nil-recorder round %.0f (budget ×%.2f)\n",
			float64(off.NsPerOp()), measured, timingOffTolerance)
		failed = true
	}
	if off.AllocsPerOp() > maxOffAllocs {
		fmt.Printf("FAIL: sharded round with a timing-off recorder allocates %d/op, max %d\n",
			off.AllocsPerOp(), maxOffAllocs)
		failed = true
	}
	if sc := rep.SnapshotCost; sc != nil {
		m := measureSnapshotCost(seed, sc.Shards)
		recorded := sc.SnapshotNsPerOp + sc.EncodeNsPerOp
		measured := m.SnapshotNsPerOp + m.EncodeNsPerOp
		memScale := scale
		if memScale < 1 {
			memScale = 1
		}
		allowedNs := recorded * memScale * snapshotGateTolerance
		fmt.Printf("  snapshot cost %s n=%d: measured %.1f ms (Snapshot %.1f + Encode %.1f), allowed %.1f ms\n",
			m.Topology, m.N, measured/1e6, m.SnapshotNsPerOp/1e6, m.EncodeNsPerOp/1e6, allowedNs/1e6)
		fmt.Printf("  snapshot size: measured %d bytes (%.1f B/node), recorded %d\n",
			m.EncodedBytes, m.BytesPerNode, sc.EncodedBytes)
		if measured > allowedNs {
			fmt.Printf("FAIL: million-node snapshot cost regressed %.1f%% over the normalized baseline (gate: %.0f%%)\n",
				100*(measured/(recorded*memScale)-1), 100*(snapshotGateTolerance-1))
			failed = true
		}
		if float64(m.EncodedBytes) > float64(sc.EncodedBytes)*gateTolerance {
			fmt.Printf("FAIL: encoded snapshot grew to %d bytes, baseline %d (gate: %.0f%%)\n",
				m.EncodedBytes, sc.EncodedBytes, 100*(gateTolerance-1))
			failed = true
		}
	}
	// k-value batching gate: re-measure the largest recorded k and hold
	// the batched speedup to max(floor, recorded/drift). Both sides of
	// the ratio come from this host, so no machine normalization is
	// needed or applied.
	var kv *kValueEntry
	for i := range rep.KValueBatching {
		if kv == nil || rep.KValueBatching[i].K > kv.K {
			kv = &rep.KValueBatching[i]
		}
	}
	if kv != nil && kv.K > 1 {
		if kv.N&(kv.N-1) != 0 {
			fatal(fmt.Errorf("%s: k_value_batching n=%d is not a hypercube size", path, kv.N))
		}
		kg := topology.Hypercube(bits.Len(uint(kv.N)) - 1)
		scalarNs := measureKRound(kg, 1, seed)
		batchedNs := measureKRound(kg, kv.K, seed)
		speedup := float64(kv.K) * scalarNs / batchedNs
		floor := kValueGateFloor
		if rec := kv.BatchedSpeedup / kValueDriftTolerance; rec > floor {
			floor = rec
		}
		fmt.Printf("  k-value batching k=%d: measured %.2fx (scalar %.0f ns, batched %.0f ns), floor %.2fx (recorded %.2fx)\n",
			kv.K, speedup, scalarNs, batchedNs, floor, kv.BatchedSpeedup)
		if speedup < floor {
			fmt.Printf("FAIL: width-%d batched round is only %.2fx faster than %d scalar rounds (floor %.2fx)\n",
				kv.K, speedup, kv.K, floor)
			failed = true
		}
	}

	// Phase-2 delivery gate: re-measure the smallest recorded row (the
	// 2^15 hypercube — the 2^20 torus is too costly to re-run per CI
	// push) and hold the serial/parallel delivery ratio to
	// max(floor, recorded/drift), with multicore leniency: when the
	// recording host had more shard slots than this one, only the
	// absolute floor applies, because the recorded parallel speedup is
	// not reproducible here by construction.
	if len(rep.Phase2Delivery) > 0 {
		p2 := &rep.Phase2Delivery[0]
		for i := range rep.Phase2Delivery {
			if rep.Phase2Delivery[i].N < p2.N {
				p2 = &rep.Phase2Delivery[i]
			}
		}
		pg := phase2Families()[0]
		if p2.Topology != pg.Name() || p2.N != pg.N() {
			fatal(fmt.Errorf("%s: smallest phase2_delivery row is %s/n=%d, gate measures %s/n=%d — re-record with -bench-phase2",
				path, p2.Topology, p2.N, pg.Name(), pg.N()))
		}
		m := measurePhase2Row(pg, seed, p2.Shards)
		floor := phase2GateFloor
		recordedSlots := min(p2.GoMaxProcs, p2.Shards)
		gateSlots := min(runtime.GOMAXPROCS(0), p2.Shards)
		if gateSlots >= recordedSlots {
			if rec := p2.DeliverySpeedup / phase2DriftTolerance; rec > floor {
				floor = rec
			}
		}
		fmt.Printf("  phase-2 delivery %s n=%d shards=%d: measured %.2fx (serial %.0f ns, parallel %.0f ns), floor %.2fx (recorded %.2fx)\n",
			m.Topology, m.N, m.Shards, m.DeliverySpeedup, m.SerialNsPerOp, m.ParallelNsPerOp, floor, p2.DeliverySpeedup)
		if m.DeliverySpeedup < floor {
			fmt.Printf("FAIL: parallel phase-2 delivery is only %.2fx the serial merge (floor %.2fx)\n",
				m.DeliverySpeedup, floor)
			failed = true
		}
		if m.ParallelAllocsOp > p2.ParallelAllocsOp {
			fmt.Printf("FAIL: parallel-delivery round allocates %d/op, baseline %d/op\n",
				m.ParallelAllocsOp, p2.ParallelAllocsOp)
			failed = true
		}
	}

	// dmGS batching gate: the schedule is seed-deterministic, so the
	// reduction and round counts must reproduce the baseline bitwise,
	// and the batched schedule must stay strictly cheaper in rounds.
	if db := rep.DmgsBatching; db != nil {
		m := measureDmgsBatching(db.Seed)
		fmt.Printf("  dmgs batching %s m=%d: legacy %d reductions/%d rounds, batched %d/%d (%.2fx wall clock)\n",
			m.Topology, m.M, m.LegacyReductions, m.LegacyTotalRounds,
			m.BatchedReductions, m.BatchedTotalRounds, m.WallClockSpeedup)
		if m.LegacyReductions != db.LegacyReductions || m.BatchedReductions != db.BatchedReductions ||
			m.LegacyTotalRounds != db.LegacyTotalRounds || m.BatchedTotalRounds != db.BatchedTotalRounds {
			fmt.Printf("FAIL: dmGS schedule drifted from the recorded deterministic counts (recorded legacy %d/%d, batched %d/%d)\n",
				db.LegacyReductions, db.LegacyTotalRounds, db.BatchedReductions, db.BatchedTotalRounds)
			failed = true
		}
		if m.BatchedTotalRounds >= m.LegacyTotalRounds {
			fmt.Printf("FAIL: batched dmGS used %d gossip rounds, not fewer than the classic schedule's %d\n",
				m.BatchedTotalRounds, m.LegacyTotalRounds)
			failed = true
		}
	}

	// Partition-quality gate: both layouts are deterministic, so the
	// recorded table must reproduce exactly, and the cache-aware cut
	// may never exceed the contiguous one.
	if len(rep.PartitionQuality) > 0 {
		rows := partitionQualityRows(rep.PartitionQuality[0].Shards)
		if len(rows) != len(rep.PartitionQuality) {
			fmt.Printf("FAIL: partition_quality has %d recorded rows, gate derives %d\n",
				len(rep.PartitionQuality), len(rows))
			failed = true
		} else {
			for i, row := range rows {
				if row != rep.PartitionQuality[i] {
					fmt.Printf("FAIL: partition row %s/%d drifted: recorded %+v, derived %+v\n",
						row.Topology, row.Shards, rep.PartitionQuality[i], row)
					failed = true
				}
				if row.CacheAwareCut > row.ContiguousCut {
					fmt.Printf("FAIL: cache-aware layout cuts %d edges on %s, contiguous cuts %d\n",
						row.CacheAwareCut, row.Topology, row.ContiguousCut)
					failed = true
				}
			}
		}
		fmt.Printf("  partition quality: %d rows reproduced deterministically\n", len(rows))
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("bench-gate OK")
}

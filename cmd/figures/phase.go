package main

// Flight-recorder consumers: -phase-report cross-references the
// partition's static traffic prediction against the phase timings the
// flight recorder actually measured, and -check-timeline validates a
// gossipsim -timeline export structurally (the CI smoke's half of the
// Perfetto story — see EXPERIMENTS.md for the interactive half).

import (
	"encoding/json"
	"fmt"
	"os"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
	"pcfreduce/internal/trace"
)

// phaseReportRounds is the length of each -phase-report run: long enough
// for per-shard delivery-time shares to stabilize, short enough to stay
// interactive.
const phaseReportRounds = 200

// runPhaseReport runs a timing-enabled sharded PCF reduction on two
// layout-sensitive families and prints, per destination shard, the
// partition's predicted share of phase-2 delivery load (the incoming
// column of topology.Partition.TrafficMatrix, diagonal included — every
// staged message crosses a bucket, intra-shard ones too) against the
// share of delivery time the flight recorder measured, plus each
// fan-out's wall clock, the caller's barrier wait (the straggler
// signal) and pool utilization. A skew well above 1 marks a shard whose
// delivery is more expensive than its traffic predicts — a straggler
// the static partitioner cannot see.
func runPhaseReport(emit func(*trace.Table), seed int64, shards int) {
	for _, g := range []*topology.Graph{
		topology.Hypercube(10),    // contiguous blocks are subcubes; CacheAware falls back
		topology.Torus2D(128, 128), // BFS layout beats contiguous; cross-traffic matters
	} {
		pt := topology.CacheAware(g, shards)
		p := len(pt.Shards)
		rec := metrics.New(metrics.Config{Shards: p, Interval: 1 << 30, Timing: true})
		n := g.N()
		e := sim.NewScalar(g, experiments.PCF.Protos(n), experiments.UniformInputs(n, seed),
			gossip.Average, seed, sim.WithPartition(pt))
		e.SetMetrics(rec)
		for r := 0; r < phaseReportRounds; r++ {
			e.Step()
			e.Errors()
		}
		e.Close()

		tm := pt.TrafficMatrix(g)
		pred := make([]int, p)
		predTotal := 0
		for s := range tm {
			for d, c := range tm[s] {
				pred[d] += c
				predTotal += c
			}
		}
		meas := make([]uint64, p)
		var measTotal uint64
		for d := 0; d < p; d++ {
			meas[d] = rec.Timing(d).Hist(metrics.PhaseDeliver).SumNs
			measTotal += meas[d]
		}
		t := trace.NewTable(
			fmt.Sprintf("phase report — %s, %d shards (%s layout), %d rounds: traffic-predicted vs measured phase-2 delivery load",
				g.Name(), p, pt.Stats.Strategy, phaseReportRounds),
			"shard", "nodes", "in-traffic", "predicted share", "deliver ms", "measured share", "skew")
		for d := 0; d < p; d++ {
			predShare := float64(pred[d]) / float64(predTotal)
			measShare := float64(meas[d]) / float64(measTotal)
			skew := ""
			if predShare > 0 {
				skew = fmt.Sprintf("%.2f", measShare/predShare)
			}
			t.AddRow(d, len(pt.Shards[d]), pred[d],
				fmt.Sprintf("%.1f%%", 100*predShare),
				float64(meas[d])/1e6,
				fmt.Sprintf("%.1f%%", 100*measShare),
				skew)
		}
		emit(t)

		merged := rec.MergedTiming()
		t2 := trace.NewTable(
			fmt.Sprintf("phase report — %s: fan-out wall clock, caller barrier wait, utilization (%d workers)",
				g.Name(), p),
			"fan-out", "task ms", "wall ms", "barrier-wait ms", "utilization")
		for _, f := range []struct {
			name                string
			task, wall, barrier metrics.Phase
		}{
			{"activate", metrics.PhaseActivate, metrics.PhaseWallActivate, metrics.PhaseBarrierActivate},
			{"deliver", metrics.PhaseDeliver, metrics.PhaseWallDeliver, metrics.PhaseBarrierDeliver},
			{"errors", metrics.PhaseErrors, metrics.PhaseWallErrors, metrics.PhaseBarrierErrors},
		} {
			task := merged.Hist(f.task).SumNs
			wall := merged.Hist(f.wall).SumNs
			barrier := merged.Hist(f.barrier).SumNs
			util := ""
			if wall > 0 {
				util = fmt.Sprintf("%.0f%%", 100*float64(task)/(float64(p)*float64(wall)))
			}
			t2.AddRow(f.name, float64(task)/1e6, float64(wall)/1e6, float64(barrier)/1e6, util)
		}
		emit(t2)
	}
}

// traceEvent mirrors the Chrome trace-event rows metrics.TimelineWriter
// emits, for structural validation.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// runCheckTimeline validates a gossipsim -timeline export: the JSON must
// parse, every slice and instant must sit on a named track, the core
// round phases must each have recorded slices, and at least one instant
// event (fault injection, churn op, snapshot or eviction) must be
// present — the CI smoke always runs a faulted scenario, so an empty
// events track means the ring→timeline wiring broke. Exits non-zero on
// any violation.
func runCheckTimeline(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("check-timeline %s: %w", path, err))
	}
	failed := false
	fail := func(format string, args ...any) {
		fmt.Printf("FAIL: "+format+"\n", args...)
		failed = true
	}
	if len(doc.TraceEvents) == 0 {
		fail("%s has no traceEvents", path)
	}
	tracks := map[int]string{}
	slices := map[string]int{}
	instants := map[string]int{}
	badRows := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if name, ok := ev.Args["name"].(string); ok && ev.Name == "thread_name" {
				tracks[ev.Tid] = name
			}
		case "X":
			slices[ev.Name]++
			if ev.Ts < 0 || ev.Dur < 0 || ev.Args["round"] == nil || ev.Args["shard"] == nil {
				badRows++
			}
			if _, ok := tracks[ev.Tid]; !ok {
				badRows++
			}
		case "i":
			instants[ev.Name]++
			if ev.S != "g" || ev.Args["round"] == nil {
				badRows++
			}
			if _, ok := tracks[ev.Tid]; !ok {
				badRows++
			}
		default:
			badRows++
		}
	}
	if badRows > 0 {
		fail("%d malformed rows (unnamed track, unknown ph, negative ts/dur or missing args)", badRows)
	}
	for _, phase := range []string{"activate", "deliver", "round"} {
		if slices[phase] == 0 {
			fail("no %q slices — the flight recorder did not time that phase", phase)
		}
	}
	totalSlices, totalInstants := 0, 0
	for _, c := range slices {
		totalSlices += c
	}
	for _, c := range instants {
		totalInstants += c
	}
	if totalInstants == 0 {
		fail("no instant events — faulted runs must export their fault/churn/snapshot ring")
	}
	fmt.Printf("check-timeline %s: %d tracks, %d slices over %d phases, %d instants over %d kinds\n",
		path, len(tracks), totalSlices, len(slices), totalInstants, len(instants))
	for name, c := range instants {
		fmt.Printf("  instant %-20s %d\n", name, c)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("check-timeline OK")
}

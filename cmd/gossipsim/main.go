// Command gossipsim is a general-purpose driver for the reduction
// algorithms: pick an algorithm, a topology, an aggregate and a fault
// scenario, and watch the reduction converge.
//
// Examples:
//
//	gossipsim -algo pcf -topo hypercube:8 -agg avg
//	gossipsim -algo pf -topo torus3d:8 -agg sum -eps 1e-12
//	gossipsim -algo pcf -topo hypercube:6 -faillink 100:0:1 -rounds 250 -trace 10
//	gossipsim -algo pushsum -topo grid2d:16x16 -loss 0.05
//	gossipsim -algo pcf -topo ring:64 -crash 50:3
//	gossipsim -algo pcf-robust -topo hypercube:6 -concurrent -eps 1e-9
//	gossipsim -algo pcf -topo hypercube:6 -event -latency 0.05,0.2
//
// Oracle-free failure detection (silent faults nobody is notified of;
// the detector of internal/detect must discover them):
//
//	gossipsim -algo pcf -topo hypercube:6 -detect -silent-crash 100:21
//	gossipsim -algo pcf -topo ring:32 -detect -detect-timeout 30 -outage 50:400:0:1
//	gossipsim -algo pcf -topo hypercube:6 -detect -detect-policy phi -phi 6 -silent-crash 200:40
//	gossipsim -topo hypercube:6 -detect-exp -detect-params 10,20,40,80,160
//
// Open-world membership (sustained join/leave/rewire churn and the
// per-link transmission-failure bias experiment):
//
//	gossipsim -churn -algo pf,pcf,pcf-robust -topo hypercube:6 -rounds 400 -seed 7
//	gossipsim -churn -algo pcf -topo hypercube:6 -rounds 400 -shards 4 -mass-tol 1e-6
//	gossipsim -lossbias -algo pushsum,pf,fu -topo hypercube:6 -loss 0.2 -rounds 60
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pcfreduce"
	"pcfreduce/internal/checkpoint"
	"pcfreduce/internal/detect"
	"pcfreduce/internal/experiments"
	"pcfreduce/internal/fault"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/metrics"
	"pcfreduce/internal/profiling"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
	"pcfreduce/internal/trace"
)

// phaseLabels is set in main when -cpuprofile is given: sharded engines
// built by the run paths then attach runtime/pprof phase/shard labels to
// their pooled tasks.
var phaseLabels bool

func main() {
	var (
		algoName   = flag.String("algo", "pcf", "algorithm: pcf|pcf-robust|pf|pushsum|fu")
		topoSpec   = flag.String("topo", "hypercube:6", "topology: hypercube:D | torus3d:S | torus2d:AxB | grid2d:AxB | ring:N | path:N | complete:N | randreg:N,D")
		aggName    = flag.String("agg", "avg", "aggregate: avg|sum")
		eps        = flag.Float64("eps", 1e-12, "target maximal relative local error")
		rounds     = flag.Int("rounds", 0, "max rounds (0 = auto)")
		seed       = flag.Int64("seed", 1, "random seed (inputs and schedule)")
		loss       = flag.Float64("loss", 0, "message loss probability")
		failLink   = flag.String("faillink", "", "permanent link failure ROUND:A:B (repeatable, comma-separated)")
		crash      = flag.String("crash", "", "node crash ROUND:NODE (repeatable, comma-separated)")
		traceEvery = flag.Int("trace", 0, "print the max error every K rounds (0 = off)")
		concurrent = flag.Bool("concurrent", false, "run on the goroutine runtime instead of the round simulator")
		timeout    = flag.Duration("timeout", 10*time.Second, "wall-clock bound for -concurrent")
		eventMode  = flag.Bool("event", false, "run on the continuous-time event engine (per-message latencies)")
		latency    = flag.String("latency", "0.05,0.2", "message latency range MIN,MAX in gossip-interval units for -event")
		simTime    = flag.Float64("simtime", 5000, "simulated-time bound for -event")

		detectMode    = flag.Bool("detect", false, "enable the oracle-free failure detector (round simulator)")
		detectPolicy  = flag.String("detect-policy", "fixed", "suspicion policy: fixed|phi")
		detectTimeout = flag.Float64("detect-timeout", 50, "silence timeout in rounds (fixed policy; φ bootstrap)")
		phiThreshold  = flag.Float64("phi", 8, "φ-accrual suspicion threshold")
		silentCrash   = flag.String("silent-crash", "", "UNANNOUNCED node crash ROUND:NODE (repeatable, comma-separated)")
		outage        = flag.String("outage", "", "transient silent link outage FROM:TO:A:B (repeatable, comma-separated)")
		detectExp     = flag.Bool("detect-exp", false, "run the detection latency/false-positive sweep (EXP-L) and exit")
		detectParams  = flag.String("detect-params", "10,20,40,80,160", "sweep axis for -detect-exp: timeouts in rounds (fixed) or φ thresholds (phi)")
		trials        = flag.Int("trials", 5, "seeds per sweep point for -detect-exp")

		sweepMode       = flag.Bool("sweep", false, "run the standard experiment grid on the parallel sweep engine and exit")
		workers         = flag.Int("workers", 0, "worker-pool size for -sweep (0 = auto); any value yields bit-identical results")
		sweepJSON       = flag.String("sweep-json", "", "write the -sweep result JSON to this file instead of a summary to stdout")
		checkpointDir   = flag.String("checkpoint-dir", "", "with -sweep: directory for durable per-trial results and mid-trial engine checkpoints")
		checkpointEvery = flag.Int("checkpoint-every", 0, "with -sweep: mid-trial checkpoint cadence in rounds (needs -checkpoint-dir; mid-trial restore needs -shards ≥ 1)")
		resumeSweep     = flag.Bool("resume", false, "with -sweep: skip trials already completed in -checkpoint-dir and restore interrupted trials from their mid-trial checkpoints")

		replayFrom    = flag.String("replay-from", "", "restore an engine checkpoint file (written by -snapshot-every or a sweep's -checkpoint-dir) and re-execute from its round with tracing; the -topo flag must rebuild the topology the snapshot was taken on")
		snapshotEvery = flag.Int("snapshot-every", 0, "write an engine checkpoint every K rounds to -snapshot-out (round simulator; implies -shards 1 when -shards is 0)")
		snapshotOut   = flag.String("snapshot-out", "gossipsim.ckpt", "checkpoint file path for -snapshot-every")
		recoveryExp   = flag.Bool("recovery-exp", false, "run the recovery-strategy comparison (detector reintegration vs checkpoint-restart) and exit")

		churnMode   = flag.Bool("churn", false, "run the sustained-churn experiment (generated joins, graceful leaves, rewires, per-link loss) and exit non-zero on mass drift or non-convergence; -algo accepts a comma-separated list here")
		churnEvery  = flag.Int("churn-every", 10, "rounds between membership events for -churn")
		churnLosses = flag.Int("churn-losses", 0, "seed the -churn schedule with this many lossy base links (rates drawn up to 0.05)")
		quietTail   = flag.Int("quiet-tail", 0, "churn-free settling rounds at the end of the -churn horizon (0 = rounds/4)")
		massTol     = flag.Float64("mass-tol", 1e-9, "relative mass-conservation bound -churn enforces at the drained horizon; the sequential executor holds ~1e-16, the phase-split executor (-shards > 0) drains with a crossing transient on the order of the final error, so loosen to ~1e-6 there")
		lossBias    = flag.Bool("lossbias", false, "run the arXiv 1504.08193 transmission-failure bias experiment (-loss is the per-link rate, default 0.2; -algo accepts a comma-separated list) and exit")

		shards     = flag.Int("shards", 0, "run round-simulator reductions on the sharded executor with this many shards (0 = sequential); results are byte-identical for any shards ≥ 1")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		metricsEvery = flag.Int("metrics", 0, "sample the invariant probes (mass residual, in-flight weight, error quantiles, flow anti-symmetry) every K rounds and print the sample table at the end (0 = off)")
		eventsOut    = flag.String("events", "", `write the trace-event ring (faults, evictions, reintegrations, convergence epochs) as JSONL to this file ("-" = stdout)`)
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus text at /metrics, expvar at /debug/vars and pprof at /debug/pprof/ on this address for the duration of the run (concurrent runtime and round-simulator runs)")
		timingFlag   = flag.Bool("timing", false, "record the flight recorder's per-phase/per-shard duration histograms (sharded executor; timing never changes results) and print the phase table at the end")
		timelineOut  = flag.String("timeline", "", "write a Chrome-trace / Perfetto JSON timeline of the sharded round — one track per worker, phase/shard slices, fault/churn/snapshot instant events — to this file (implies -timing and the simulator fault path; open at https://ui.perfetto.dev)")
		churnPlan    = flag.Bool("churn-plan", false, "merge a generated open-world churn schedule (cadence -churn-every, lossy links -churn-losses) into the simulator fault path's plan; requires -agg avg")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	// When a CPU profile is being taken, tag the sharded engine's pooled
	// tasks with runtime/pprof phase/shard labels so the profile breaks
	// down by activate/deliver phase (see EXPERIMENTS.md). Opt-in via the
	// profile flag because the labels cost an allocation per task.
	phaseLabels = *cpuProfile != ""

	// A shard count past the scheduler budget would only oversubscribe
	// the machine (and, combined with -sweep workers, used to surface as
	// a panic deep in the pool) — refuse it up front with a real error.
	if procs := runtime.GOMAXPROCS(0); *shards > procs {
		fatal(fmt.Errorf("-shards %d exceeds the GOMAXPROCS budget (%d); lower -shards or raise GOMAXPROCS", *shards, procs))
	}

	if *sweepMode {
		runSweep(*workers, *shards, *seed, *rounds, *sweepJSON, *metricsEvery,
			*checkpointDir, *checkpointEvery, *resumeSweep)
		return
	}

	if *churnMode || *lossBias {
		g, err := parseTopo(*topoSpec, *seed)
		if err != nil {
			fatal(err)
		}
		algos, err := parseAlgoList(*algoName)
		if err != nil {
			fatal(err)
		}
		epsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "eps" {
				epsSet = true
			}
		})
		if *churnMode {
			runChurn(g, algos, *rounds, *churnEvery, *churnLosses, *quietTail, *seed, *shards, *massTol, *eps, epsSet)
			return
		}
		runLossBias(g, algos, *loss, *rounds, *seed)
		return
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	g, err := parseTopo(*topoSpec, *seed)
	if err != nil {
		fatal(err)
	}
	agg := pcfreduce.Average
	switch strings.ToLower(*aggName) {
	case "avg", "average":
	case "sum":
		agg = pcfreduce.Sum
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *aggName))
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]float64, g.N())
	for i := range inputs {
		inputs[i] = rng.Float64() * 100
	}

	fmt.Printf("gossipsim: %s on %s (%d nodes, diameter-friendly degree %d), aggregate %s\n",
		algo, g.Name(), g.N(), g.MaxDegree(), agg)

	if *detectExp {
		pol, err := parsePolicy(*detectPolicy)
		if err != nil {
			fatal(err)
		}
		params, err := parseFloats(*detectParams)
		if err != nil {
			fatal(fmt.Errorf("bad -detect-params: %w", err))
		}
		expAlgo, err := experiments.AlgorithmByName(*algoName)
		if err != nil {
			fatal(err)
		}
		runDetectExp(g, expAlgo, pol, params, *trials, *seed, *detectTimeout)
		return
	}

	if *recoveryExp {
		runRecoveryExp(g, max(1, *shards), *seed, *detectTimeout)
		return
	}

	if *detectMode || *silentCrash != "" || *outage != "" || *replayFrom != "" || *snapshotEvery > 0 ||
		*timelineOut != "" || *churnPlan {
		pol, err := parsePolicy(*detectPolicy)
		if err != nil {
			fatal(err)
		}
		plan, err := buildSilentPlan(g, *silentCrash, *outage, *failLink, *crash)
		if err != nil {
			fatal(err)
		}
		var dc *sim.DetectorConfig
		if *detectMode {
			dc = &sim.DetectorConfig{Detect: detect.Config{
				Policy:       pol,
				Timeout:      *detectTimeout,
				PhiThreshold: *phiThreshold,
			}}
		} else if *silentCrash != "" || *outage != "" {
			fmt.Println("note: silent faults without -detect — nobody will ever evict the failed components")
		}
		rec := newRecorder(*metricsEvery, *traceEvery, max(1, *shards), *eventsOut,
			*timingFlag || *timelineOut != "")
		if rec == nil && *metricsAddr != "" {
			rec = metrics.New(metrics.Config{Shards: max(1, *shards), Interval: 10})
		}
		stopServe := serveSimMetrics(*metricsAddr, rec)
		runDetect(g, algo, agg, inputs, *eps, *seed, *rounds, *shards, plan, dc, *traceEvery, rec,
			ckptOpts{replayFrom: *replayFrom, every: *snapshotEvery, out: *snapshotOut},
			obsOpts{timelineOut: *timelineOut, churn: *churnPlan, churnEvery: *churnEvery,
				churnLosses: *churnLosses, algoName: *algoName})
		reportMetrics(rec, *metricsEvery > 0, *eventsOut)
		stopServe()
		return
	}

	if *eventMode {
		lmin, lmax, err := parseRange(*latency)
		if err != nil {
			fatal(err)
		}
		runEvent(g, algo, agg, inputs, *eps, *seed, lmin, lmax, *simTime)
		return
	}

	if *concurrent {
		rec := newRecorder(*metricsEvery, *traceEvery, 1, *eventsOut, false)
		if rec == nil && *metricsAddr != "" {
			rec = metrics.New(metrics.Config{Concurrent: true})
		}
		res, err := pcfreduce.ReduceConcurrent(context.Background(), inputs, algo, pcfreduce.ConcurrentOptions{
			Topology:    g,
			Aggregate:   agg,
			Eps:         *eps,
			Timeout:     *timeout,
			Seed:        *seed,
			Metrics:     rec,
			MetricsAddr: *metricsAddr,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("concurrent run: converged=%v maxErr=%.3e exact=%.6g node0=%.6g\n",
			res.Converged, res.MaxError, res.Exact, res.Estimates[0])
		reportMetrics(rec, *metricsEvery > 0, *eventsOut)
		return
	}

	if *timingFlag && *shards == 0 {
		fmt.Println("note: -timing times the sharded executor's phases — pass -shards ≥ 1 to record any")
	}
	rec := newRecorder(*metricsEvery, *traceEvery, *shards, *eventsOut, *timingFlag && *shards > 0)
	if rec == nil && *metricsAddr != "" {
		rec = metrics.New(metrics.Config{Shards: max(1, *shards), Interval: 10})
	}
	stopServe := serveSimMetrics(*metricsAddr, rec)
	defer stopServe()
	opt := pcfreduce.ReduceOptions{
		Topology:  g,
		Aggregate: agg,
		Eps:       *eps,
		MaxRounds: *rounds,
		Seed:      *seed,
		LossRate:  *loss,
		Shards:    *shards,
		Metrics:   rec,
	}
	if *failLink != "" {
		for _, spec := range strings.Split(*failLink, ",") {
			r, a, b, err := parse3(spec)
			if err != nil {
				fatal(fmt.Errorf("bad -faillink %q: %w", spec, err))
			}
			opt.LinkFailures = append(opt.LinkFailures, pcfreduce.LinkFailure{Round: r, A: a, B: b})
		}
	}
	if *crash != "" {
		for _, spec := range strings.Split(*crash, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -crash %q (want ROUND:NODE)", spec))
			}
			r, err1 := strconv.Atoi(parts[0])
			nd, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad -crash %q", spec))
			}
			opt.NodeCrashes = append(opt.NodeCrashes, pcfreduce.NodeCrash{Round: r, Node: nd})
		}
	}
	opt.Trace = traceFunc(*traceEvery, rec)
	res, err := pcfreduce.Reduce(inputs, algo, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("finished after %d rounds: converged=%v maxErr=%.3e\n", res.Rounds, res.Converged, res.MaxError)
	fmt.Printf("exact aggregate %.9g; node 0 estimates %.9g\n", res.Exact, res.Estimates[0])
	reportMetrics(rec, *metricsEvery > 0, *eventsOut)
}

// newRecorder builds the run's metrics recorder. All four observation
// flags (-metrics, -events, -trace, -timing) share it, so there is
// exactly one probing code path: -trace alone samples at the trace
// cadence (that is where its mass-residual column comes from), -metrics
// sets its own cadence and additionally prints the sample table,
// -events only needs the ring, and -timing only needs the per-shard
// timing banks — when timing is the sole request the sampling interval
// falls back to effectively-never so the invariant probes stay off.
// Returns nil — the recorder that costs nothing — when no observation
// was requested.
func newRecorder(metricsEvery, traceEvery, shards int, eventsPath string, timing bool) *metrics.Recorder {
	if metricsEvery <= 0 && traceEvery <= 0 && eventsPath == "" && !timing {
		return nil
	}
	interval := metricsEvery
	if interval <= 0 {
		interval = traceEvery
	}
	if interval <= 0 {
		interval = 1 << 30
	}
	return metrics.New(metrics.Config{Shards: max(1, shards), Interval: interval, Timing: timing})
}

// serveSimMetrics binds -metrics-addr for simulator runs and serves the
// same observability endpoint the concurrent runtime exposes through
// ConcurrentOptions.MetricsAddr: /metrics (Prometheus text, including
// the flight recorder's phase summaries when -timing is on),
// /debug/vars (expvar under "pcfreduce") and /debug/pprof. Returns a
// stop function; a no-op when the address is empty or no recorder
// exists.
func serveSimMetrics(addr string, rec *metrics.Recorder) func() {
	if addr == "" || rec == nil {
		return func() {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("-metrics-addr: %w", err))
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", rec.Handler())
	metrics.PublishExpvar(rec)
	mux.Handle("/debug/vars", expvar.Handler())
	profiling.AttachPprof(mux)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed by the stop function
	fmt.Printf("metrics endpoint: http://%s/metrics\n", ln.Addr())
	return func() { srv.Close() }
}

// traceFunc returns the per-round trace printer. With a recorder
// attached the printer reads the round's invariant sample, so the trace
// reports the global mass-conservation residual alongside the oracle
// error through the same probe -metrics uses.
func traceFunc(every int, rec *metrics.Recorder) func(round int, maxErr float64) {
	if every <= 0 {
		return nil
	}
	return func(round int, maxErr float64) {
		if round%every != 0 {
			return
		}
		if rec.LastRound() == round {
			s, _ := rec.Last()
			fmt.Printf("  round %5d  max local error %.3e  mass residual %.3e\n",
				round, maxErr, float64(s.MassResidual))
			return
		}
		fmt.Printf("  round %5d  max local error %.3e\n", round, maxErr)
	}
}

// reportMetrics prints the sample table (under -metrics), the flight
// recorder's phase table (under -timing / -timeline) and writes the
// event trace (under -events) once the run is over.
func reportMetrics(rec *metrics.Recorder, table bool, eventsPath string) {
	if rec == nil {
		return
	}
	if ps := rec.PhaseStats(); len(ps) > 0 {
		t := trace.NewTable("flight recorder: phase timing (merged over shards and rounds)",
			"phase", "count", "total ms", "mean us", "p50 us", "p90 us", "p99 us", "max us")
		for _, s := range ps {
			t.AddRow(s.Phase, s.Count,
				float64(s.SumNs)/1e6,
				float64(s.SumNs)/float64(s.Count)/1e3,
				s.P50Ns/1e3, s.P90Ns/1e3, s.P99Ns/1e3,
				float64(s.MaxNs)/1e3)
		}
		fmt.Print(t.String())
	}
	if table {
		fmt.Print(rec.Table().String())
		snap := rec.Counters()
		fmt.Printf("counters: sent=%d delivered=%d lost=%d dropped=%d corrupted=%d keepalives=%d suspicions=%d evictions=%d reintegrations=%d freelist=%d/%d\n",
			snap.Get(metrics.MsgsSent), snap.Get(metrics.MsgsDelivered),
			snap.Get(metrics.MsgsLost), snap.Get(metrics.MsgsDropped),
			snap.Get(metrics.MsgsCorrupted), snap.Get(metrics.Keepalives),
			snap.Get(metrics.Suspicions), snap.Get(metrics.Evictions),
			snap.Get(metrics.Reintegrations),
			snap.Get(metrics.FreeListHits), snap.Get(metrics.FreeListHits)+snap.Get(metrics.FreeListMisses))
	}
	if eventsPath == "" {
		return
	}
	w := os.Stdout
	if eventsPath != "-" {
		f, err := os.Create(eventsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteEventsJSONL(w); err != nil {
		fatal(err)
	}
	if dropped := rec.EventsDropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "gossipsim: %d oldest trace events overwritten (ring full)\n", dropped)
	}
}

// runSweep executes the standard experiment grid (experiments.DefaultSweep)
// on the parallel sweep engine. Neither the worker count nor the shard
// count changes the numbers — every trial's seed is derived from the
// root seed and its grid position, and the sharded executor is
// byte-identical across shard counts — so -workers and -shards only
// trade wall-clock time (shards > 0 does select the sharded executor's
// own deterministic schedule, a different experiment from shards = 0).
func runSweep(workers, shards int, seed int64, rounds int, jsonPath string, metricsEvery int,
	checkpointDir string, checkpointEvery int, resume bool) {
	cfg := experiments.DefaultSweep()
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.RootSeed = seed
	if rounds > 0 {
		cfg.MaxRounds = rounds
	}
	cfg.Record = jsonPath != ""
	if metricsEvery > 0 {
		cfg.Metrics = true
		cfg.MetricsEvery = metricsEvery
	}
	cfg.CheckpointDir = checkpointDir
	cfg.CheckpointEvery = checkpointEvery
	cfg.Resume = resume
	start := time.Now()
	res, err := experiments.Sweep(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, res.JSON(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("sweep: %d trials in %v, wrote %s\n", len(res.Trials), elapsed.Round(time.Millisecond), jsonPath)
		return
	}
	fmt.Printf("sweep: %d trials in %v (root seed %d)\n", len(res.Trials), elapsed.Round(time.Millisecond), seed)
	fmt.Printf("  %-14s %-13s %-12s %6s %10s %12s\n", "topology", "algorithm", "plan", "trial", "rounds", "final max")
	for _, tr := range res.Trials {
		fmt.Printf("  %-14s %-13s %-12s %6d %10d %12.3e\n",
			tr.Topology, tr.Algorithm, tr.Plan, tr.Trial, tr.Rounds, tr.FinalMax)
	}
}

// runEvent drives the continuous-time engine directly (it is below the
// public facade, like the fault scheduling features of this command).
func runEvent(g *pcfreduce.Graph, algo pcfreduce.Algorithm, agg pcfreduce.Aggregate, inputs []float64, eps float64, seed int64, lmin, lmax, simTime float64) {
	protos := make([]pcfreduce.Protocol, g.N())
	for i := range protos {
		protos[i] = algo.NewNode()
	}
	init := make([]gossip.Value, g.N())
	for i, x := range inputs {
		init[i] = gossip.Scalar(x, agg.InitialWeight(i))
	}
	e := sim.NewEvent(g, protos, init, sim.EventConfig{
		MeanInterval:   1,
		IntervalJitter: 0.5,
		LatencyMin:     lmin,
		LatencyMax:     lmax,
		Seed:           seed,
	})
	res := e.RunUntil(simTime, eps)
	fmt.Printf("event engine: converged=%v at t=%.1f (%d activations, %d sends), maxErr=%.3e\n",
		res.Converged, res.Time, e.Activations, e.Sends, res.FinalMaxError)
	fmt.Printf("exact aggregate %.9g\n", e.Targets()[0])
}

// ckptOpts routes the checkpoint features through runDetect: restore a
// snapshot before running (-replay-from) and/or write one every K
// rounds (-snapshot-every). Either implies the sharded executor, the
// only one whose state is serializable.
type ckptOpts struct {
	replayFrom string
	every      int
	out        string
}

// obsOpts routes the flight-recorder features through runDetect: a
// Perfetto timeline export destination (-timeline) and the generated
// churn schedule merged into the fault plan (-churn-plan), whose
// membership events then show up as instants on the timeline's events
// track.
type obsOpts struct {
	timelineOut string
	churn       bool
	churnEvery  int
	churnLosses int
	algoName    string
}

// runDetect drives the round simulator directly (below the public
// facade, like runEvent) with a failure plan of silent faults and,
// optionally, the oracle-free detector.
func runDetect(g *pcfreduce.Graph, algo pcfreduce.Algorithm, agg pcfreduce.Aggregate, inputs []float64, eps float64, seed int64, rounds, shards int, plan *fault.Plan, dc *sim.DetectorConfig, traceEvery int, rec *metrics.Recorder, ck ckptOpts, obs obsOpts) {
	protos := make([]pcfreduce.Protocol, g.N())
	for i := range protos {
		protos[i] = algo.NewNode()
	}
	init := make([]gossip.Value, g.N())
	for i, x := range inputs {
		init[i] = gossip.Scalar(x, agg.InitialWeight(i))
	}
	if (ck.replayFrom != "" || ck.every > 0) && shards == 0 {
		shards = 1
	}
	// Phase timing and the timeline are features of the sharded
	// executor's phase-split round; recording them on one shard is the
	// degenerate-but-valid case.
	if (obs.timelineOut != "" || rec.TimingEnabled()) && shards == 0 {
		shards = 1
	}
	if rounds == 0 {
		rounds = 20000
	}
	var opts []sim.EngineOption
	if dc != nil {
		opts = append(opts, sim.WithDetector(*dc))
	}
	if shards > 0 {
		opts = append(opts, sim.WithShards(shards))
	}
	if phaseLabels && shards > 0 {
		opts = append(opts, sim.WithPhaseLabels())
	}
	if obs.churn {
		if agg != pcfreduce.Average {
			fatal(fmt.Errorf("-churn-plan requires -agg avg (nodes join with weight 1, the average's share)"))
		}
		expAlgo, err := experiments.AlgorithmByName(obs.algoName)
		if err != nil {
			fatal(err)
		}
		churn := fault.ChurnSchedule(g, fault.ChurnOptions{
			Rounds: rounds,
			Every:  obs.churnEvery,
			Losses: obs.churnLosses,
		}, seed)
		plan.Add(churn.Events()...)
		opts = append(opts, sim.WithJoinFactory(expAlgo.New))
	}
	e := sim.New(g, protos, init, seed, opts...)
	var resume *sim.RunState
	if ck.replayFrom != "" {
		c, err := checkpoint.ReadFile(ck.replayFrom)
		if err != nil {
			fatal(fmt.Errorf("-replay-from: %w", err))
		}
		// Restore overwrites inputs, RNG streams and round counter from
		// the snapshot, so the replay re-executes the original run
		// bit-for-bit; only the topology must match, which Restore
		// validates.
		if err := e.Restore(c.Snap); err != nil {
			fatal(fmt.Errorf("-replay-from %s: %w", ck.replayFrom, err))
		}
		if c.Run != nil {
			resume = c.Run
		} else {
			resume = &sim.RunState{RoundsDone: c.Snap.Round}
		}
		fmt.Printf("replay: restored %s at round %d\n", ck.replayFrom, c.Snap.Round)
	}
	if rec != nil {
		e.SetMetrics(rec) // after Restore, which detaches any recorder
		if ck.replayFrom != "" {
			rec.RecordEvent(metrics.Event{Kind: metrics.EvReplay, Round: e.Round(), A: -1, B: -1})
		}
	}
	var tl *metrics.Timeline
	if obs.timelineOut != "" {
		tl = metrics.NewTimeline(shards)
		e.SetTimeline(tl) // after Restore, like the recorder
	}
	cfg := sim.RunConfig{MaxRounds: rounds, Eps: eps, OnRound: plan.OnRound, AfterRound: traceFunc(traceEvery, rec), Resume: resume}
	if ck.every > 0 {
		cfg.CheckpointEvery = ck.every
		cfg.OnCheckpoint = func(e *sim.Engine, rs sim.RunState) {
			snap, err := e.Snapshot()
			if err != nil {
				fatal(err)
			}
			if err := checkpoint.WriteFile(ck.out, &checkpoint.Checkpoint{Snap: snap, Run: &rs}); err != nil {
				fatal(err)
			}
			fmt.Printf("  checkpoint at round %d -> %s\n", rs.RoundsDone, ck.out)
		}
	}
	res := e.Run(cfg)
	// The oracle error cannot cross the eviction-bias floor after a
	// silent crash (mass drained into the dead links is absorbed at
	// eviction), so report internal consensus alongside it: a tiny
	// spread with a larger maxErr means the survivors agreed on a
	// slightly biased aggregate.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, est := range e.Estimates() {
		if est == nil {
			continue
		}
		lo = math.Min(lo, est[0])
		hi = math.Max(hi, est[0])
	}
	fmt.Printf("finished after %d rounds: converged=%v maxErr=%.3e spread=%.3e\n",
		res.Rounds, res.Converged, e.MaxError(), hi-lo)
	if dc != nil {
		st := e.DetectorStats()
		fmt.Printf("detector (%s): %d suspicions, %d reintegrations, %d keepalives/probes\n",
			dc.Detect.Policy, st.Suspicions, st.Reintegrations, st.Keepalives)
		for i := 0; i < g.N(); i++ {
			if s := e.Suspects(i); len(s) > 0 {
				fmt.Printf("  node %d still suspects %v\n", i, s)
			}
		}
	}
	fmt.Printf("exact aggregate over survivors %.9g\n", e.Targets()[0])
	if obs.timelineOut != "" {
		f, err := os.Create(obs.timelineOut)
		if err != nil {
			fatal(err)
		}
		tw := metrics.TimelineWriter{Timeline: tl, Recorder: rec}
		if _, err := tw.WriteTo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		spans := 0
		for _, track := range tl.Spans() {
			spans += len(track)
		}
		fmt.Printf("timeline: %d spans on %d worker tracks -> %s (open at https://ui.perfetto.dev)\n",
			spans, tl.Workers(), obs.timelineOut)
	}
}

// runDetectExp runs EXP-L and prints the latency/false-positive table.
func runDetectExp(g *pcfreduce.Graph, algo experiments.Algorithm, pol detect.Policy, params []float64, trials int, seed int64, bootstrap float64) {
	pts, err := experiments.DetectionTradeoff(experiments.DetectionConfig{
		Graph:            g,
		Algo:             algo,
		Policy:           pol,
		Params:           params,
		BootstrapTimeout: bootstrap,
		Trials:           trials,
		Seed:             seed,
	})
	if err != nil {
		fatal(err)
	}
	axis := "timeout(rounds)"
	if pol == detect.PhiAccrual {
		axis = "φ-threshold"
	}
	fmt.Printf("detection trade-off (%s policy, %d trials/point, silent crash of node %d):\n",
		pol, trials, g.N()/3)
	fmt.Printf("  %-16s %14s %12s %14s %14s %7s\n", axis, "mean latency", "max latency", "false alarms", "reintegrated", "missed")
	for _, pt := range pts {
		fmt.Printf("  %-16g %14.1f %12d %14.2f %14.2f %7d\n",
			pt.Param, pt.MeanLatency, pt.MaxLatency, pt.FalsePositives, pt.Reintegrations, pt.Missed)
	}
}

// runChurn executes the sustained-churn experiment for every requested
// algorithm over one shared schedule and enforces the open-world
// acceptance criteria: convergence to the live-roster mean and the
// Sec. II-A mass invariant over the drained final roster within
// -mass-tol. Any failure exits non-zero, which is what makes this the
// CI smoke entry point for the membership subsystem.
func runChurn(g *topology.Graph, algos []experiments.Algorithm, rounds, every, losses, tail int, seed int64, shards int, massTol, eps float64, epsSet bool) {
	if rounds == 0 {
		rounds = 400
	}
	cfg := experiments.ChurnConfig{
		Graph:     g,
		Opts:      fault.ChurnOptions{Every: every, Losses: losses},
		Rounds:    rounds,
		Seed:      seed,
		Shards:    shards,
		QuietTail: tail,
	}
	if epsSet {
		cfg.Eps = eps // default otherwise: the experiment's 1e-6, not this command's 1e-12
	}
	results := experiments.ChurnSweep(cfg, algos)
	fmt.Printf("churn: %s, %d rounds (events every %d, seed %d, shards %d)\n",
		g.Name(), rounds, every, seed, shards)
	fmt.Printf("  %-13s %6s %7s %8s %6s %11s %13s %13s  %s\n",
		"algorithm", "joins", "leaves", "rewires", "lossy", "final live", "final err", "mass resid", "verdict")
	failed := false
	for _, r := range results {
		verdict := "ok"
		switch {
		case !r.Converged:
			verdict = "FAIL (no convergence)"
			failed = true
		case r.FinalMassResidual > massTol:
			verdict = fmt.Sprintf("FAIL (mass > %.0e)", massTol)
			failed = true
		}
		fmt.Printf("  %-13s %6d %7d %8d %6d %11d %13.3e %13.3e  %s\n",
			r.Algorithm, r.Joins, r.Leaves, r.Rewires, r.LossyLinks,
			r.FinalLive, r.FinalMaxErr, r.FinalMassResidual, verdict)
	}
	if failed {
		os.Exit(1)
	}
}

// runLossBias prints the per-algorithm transmission-failure bias table:
// measured weight retention against the arXiv 1504.08193 prediction.
func runLossBias(g *topology.Graph, algos []experiments.Algorithm, p float64, rounds int, seed int64) {
	if p <= 0 {
		p = 0.2
	}
	if rounds == 0 {
		rounds = 60
	}
	fmt.Printf("loss bias: %s, per-link loss %.2f over %d rounds (seed %d)\n", g.Name(), p, rounds, seed)
	fmt.Printf("  %-13s %16s %16s %14s\n", "algorithm", "weight retained", "predicted", "estimate bias")
	for _, a := range algos {
		res := experiments.LossBias(experiments.LossBiasConfig{
			Algorithm: a,
			Graph:     g,
			P:         p,
			Rounds:    rounds,
			Seed:      seed,
		})
		fmt.Printf("  %-13s %16.6g %16.6g %14.3e\n",
			res.Algorithm, res.WeightRetained, res.Predicted, res.EstimateBias)
	}
}

// parseAlgoList resolves a comma-separated algorithm list against the
// experiments registry (the churn and loss experiments need the
// registry's join factory, not just the facade enum).
func parseAlgoList(spec string) ([]experiments.Algorithm, error) {
	var out []experiments.Algorithm
	for _, name := range strings.Split(spec, ",") {
		a, err := experiments.AlgorithmByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// runRecoveryExp prints the head-to-head table of the two recovery
// strategies: detector-driven reintegration (the node comes back with
// live state) versus checkpoint-restart (it comes back from a stale
// snapshot via sim.RestartNode).
func runRecoveryExp(g *topology.Graph, shards int, seed int64, detectTimeout float64) {
	pts, err := experiments.RecoveryComparison(experiments.RecoveryConfig{
		Graph:         g,
		Shards:        shards,
		Seed:          seed,
		DetectTimeout: detectTimeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovery comparison (victim %d, outage rounds 60-100, checkpoint at 30, detector timeout %g):\n",
		g.N()/3, detectTimeout)
	fmt.Printf("  %-13s %-19s %13s %15s %13s %14s\n",
		"algorithm", "strategy", "pre-fail max", "recovery rounds", "final max", "residual mass")
	for _, pt := range pts {
		rec := fmt.Sprintf("%d", pt.RecoveryRounds)
		if pt.RecoveryRounds < 0 {
			rec = "never"
		}
		fmt.Printf("  %-13s %-19s %13.3e %15s %13.3e %14.3e\n",
			pt.Algorithm, pt.Strategy, pt.PreFailMax, rec, pt.FinalMax, pt.ResidualMass)
	}
}

// buildSilentPlan assembles the failure schedule from the CLI flags
// (silent faults plus the legacy notified ones, so they compose).
func buildSilentPlan(g *topology.Graph, silentCrash, outage, failLink, crash string) (*fault.Plan, error) {
	n := g.N()
	checkNode := func(flag, spec string, nodes ...int) error {
		for _, nd := range nodes {
			if nd < 0 || nd >= n {
				return fmt.Errorf("bad %s %q: node %d out of range [0,%d)", flag, spec, nd, n)
			}
		}
		return nil
	}
	checkEdge := func(flag, spec string, a, b int) error {
		if err := checkNode(flag, spec, a, b); err != nil {
			return err
		}
		if !g.HasEdge(a, b) {
			return fmt.Errorf("bad %s %q: %s has no edge %d-%d", flag, spec, g.Name(), a, b)
		}
		return nil
	}
	plan := fault.NewPlan()
	if silentCrash != "" {
		for _, spec := range strings.Split(silentCrash, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad -silent-crash %q (want ROUND:NODE)", spec)
			}
			r, err1 := strconv.Atoi(parts[0])
			nd, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad -silent-crash %q", spec)
			}
			if err := checkNode("-silent-crash", spec, nd); err != nil {
				return nil, err
			}
			plan.Add(fault.SilentNodeCrash(r, nd))
		}
	}
	if outage != "" {
		for _, spec := range strings.Split(outage, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 4 {
				return nil, fmt.Errorf("bad -outage %q (want FROM:TO:A:B)", spec)
			}
			var v [4]int
			for k, p := range parts {
				x, err := strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("bad -outage %q", spec)
				}
				v[k] = x
			}
			if err := checkEdge("-outage", spec, v[2], v[3]); err != nil {
				return nil, err
			}
			plan.Add(fault.LinkOutage(v[0], v[1], v[2], v[3])...)
		}
	}
	if failLink != "" {
		for _, spec := range strings.Split(failLink, ",") {
			r, a, b, err := parse3(spec)
			if err != nil {
				return nil, fmt.Errorf("bad -faillink %q: %w", spec, err)
			}
			if err := checkEdge("-faillink", spec, a, b); err != nil {
				return nil, err
			}
			plan.Add(fault.LinkFailure(r, a, b))
		}
	}
	if crash != "" {
		for _, spec := range strings.Split(crash, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad -crash %q (want ROUND:NODE)", spec)
			}
			r, err1 := strconv.Atoi(parts[0])
			nd, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad -crash %q", spec)
			}
			if err := checkNode("-crash", spec, nd); err != nil {
				return nil, err
			}
			plan.Add(fault.NodeCrash(r, nd))
		}
	}
	return plan, nil
}

func parsePolicy(name string) (detect.Policy, error) {
	switch strings.ToLower(name) {
	case "fixed", "fixed-timeout", "timeout":
		return detect.FixedTimeout, nil
	case "phi", "phi-accrual", "accrual":
		return detect.PhiAccrual, nil
	default:
		return 0, fmt.Errorf("unknown detection policy %q (want fixed|phi)", name)
	}
}

func parseFloats(spec string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseRange(spec string) (float64, float64, error) {
	a, b, ok := strings.Cut(spec, ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad -latency %q (want MIN,MAX)", spec)
	}
	lo, err1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
	hi, err2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -latency %q", spec)
	}
	return lo, hi, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gossipsim:", err)
	os.Exit(1)
}

func parseAlgo(name string) (pcfreduce.Algorithm, error) {
	switch strings.ToLower(name) {
	case "pcf":
		return pcfreduce.PCF, nil
	case "pcf-robust", "pcfr":
		return pcfreduce.PCFRobust, nil
	case "pf", "pushflow":
		return pcfreduce.PushFlow, nil
	case "pushsum", "ps":
		return pcfreduce.PushSum, nil
	case "fu", "flowupdating":
		return pcfreduce.FlowUpdating, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func parseTopo(spec string, seed int64) (*pcfreduce.Graph, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bad topology %q (want KIND:ARGS)", spec)
	}
	atoi := func(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }
	switch strings.ToLower(kind) {
	case "hypercube":
		d, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Hypercube(d), nil
	case "torus3d":
		s, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Torus3D(s, s, s), nil
	case "torus2d", "grid2d":
		a, b, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("bad %s size %q (want AxB)", kind, arg)
		}
		av, err1 := atoi(a)
		bv, err2 := atoi(b)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad %s size %q", kind, arg)
		}
		if strings.ToLower(kind) == "torus2d" {
			return topology.Torus2D(av, bv), nil
		}
		return topology.Grid2D(av, bv), nil
	case "ring":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Ring(n), nil
	case "path":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Path(n), nil
	case "complete":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Complete(n), nil
	case "randreg":
		n, d, ok := strings.Cut(arg, ",")
		if !ok {
			return nil, fmt.Errorf("bad randreg %q (want N,D)", arg)
		}
		nv, err1 := atoi(n)
		dv, err2 := atoi(d)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad randreg %q", arg)
		}
		return topology.RandomRegular(nv, dv, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func parse3(spec string) (int, int, int, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("want ROUND:A:B")
	}
	r, err1 := strconv.Atoi(parts[0])
	a, err2 := strconv.Atoi(parts[1])
	b, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, fmt.Errorf("non-integer field")
	}
	return r, a, b, nil
}

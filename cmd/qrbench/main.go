// Command qrbench runs the distributed QR factorization experiment of
// the paper's Section IV (Figure 8): dmGS over a hypercube with the
// reduction algorithm as a black box, reporting the relative
// factorization error ‖V − QR‖∞/‖V‖∞ (and, with -orth, the
// orthogonality error ‖QᵀQ − I‖∞, the paper's closing remark of
// Sec. IV / EXP-F in DESIGN.md).
//
// Examples:
//
//	qrbench -mindim 5 -maxdim 8 -runs 10
//	qrbench -algos pf,pcf,pushsum -runs 5
//	qrbench -maxdim 10 -runs 50          # full paper scale (slow)
//	qrbench -orth -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcfreduce/internal/experiments"
	"pcfreduce/internal/trace"
)

func main() {
	var (
		algosFlag = flag.String("algos", "pf,pcf", "comma-separated reduction algorithms (pf,pcf,pcf-robust,pushsum,fu)")
		minDim    = flag.Int("mindim", 5, "smallest hypercube dimension (paper: 5)")
		maxDim    = flag.Int("maxdim", 7, "largest hypercube dimension (paper: 10)")
		cols      = flag.Int("cols", 16, "matrix columns m (paper: 16)")
		runs      = flag.Int("runs", 10, "random matrices per size (paper: 50)")
		eps       = flag.Float64("eps", 1e-15, "per-reduction target accuracy (paper: 1e-15)")
		seed      = flag.Int64("seed", 1, "base random seed")
		orth      = flag.Bool("orth", false, "also report the orthogonality error")
		csv       = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	var algos []experiments.Algorithm
	for _, name := range strings.Split(*algosFlag, ",") {
		a, err := experiments.AlgorithmByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qrbench:", err)
			os.Exit(2)
		}
		algos = append(algos, a)
	}

	headers := []string{"nodes"}
	for _, a := range algos {
		headers = append(headers, "dmGS("+a.Name+") fact err")
		if *orth {
			headers = append(headers, "dmGS("+a.Name+") orth err")
		}
		headers = append(headers, a.Name+" rounds/red", a.Name+" conv frac")
	}
	t := trace.NewTable(
		fmt.Sprintf("Figure 8 — dmGS on hypercubes, V ∈ R^{N×%d}, per-reduction ε=%.0e, %d runs averaged", *cols, *eps, *runs),
		headers...)

	for dim := *minDim; dim <= *maxDim; dim++ {
		row := []any{1 << uint(dim)}
		for _, a := range algos {
			cfg := experiments.QRConfig{
				Algorithm: a,
				Cols:      *cols,
				Runs:      *runs,
				Eps:       *eps,
				MaxRounds: 4000,
				Stall:     60,
				Seed:      *seed,
			}
			p, err := experiments.QRSingle(cfg, dim)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qrbench:", err)
				os.Exit(1)
			}
			row = append(row, p.FactErrMean)
			if *orth {
				row = append(row, p.OrthErrMean)
			}
			row = append(row, p.MeanRoundsPerReduction, p.ConvergedFrac)
		}
		t.AddRow(row...)
	}
	if *csv {
		if err := t.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "qrbench:", err)
			os.Exit(1)
		}
		return
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qrbench:", err)
		os.Exit(1)
	}
}

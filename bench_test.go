// Benchmarks regenerating the data behind every figure of the paper's
// evaluation (Figs. 2, 3, 4, 6, 7, 8 — Figs. 1 and 5 are pseudocode),
// plus protocol microbenchmarks. Each figure bench runs one
// representative cell of its experiment per iteration and reports the
// headline metric via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the qualitative content of the whole evaluation, and
// cmd/figures prints the full tables. Paper-scale parameters are noted
// per bench.
package pcfreduce_test

import (
	"math"
	"testing"

	"pcfreduce/internal/core"
	"pcfreduce/internal/experiments"
	"pcfreduce/internal/gossip"
	"pcfreduce/internal/pushflow"
	"pcfreduce/internal/pushsum"
	"pcfreduce/internal/sim"
	"pcfreduce/internal/topology"
)

// ----------------------------------------------------------------------
// Figure 2 — bus-network worked example (PF flow equilibrium).
// ----------------------------------------------------------------------

func BenchmarkFig2BusExample(b *testing.B) {
	var inv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BusExample(experiments.PushFlow, 8, 3)
		if err != nil {
			b.Fatal(err)
		}
		inv = res.FlowInvariant[0]
	}
	b.ReportMetric(inv, "edge0-invariant") // analytic value: n−1 = 7
}

// ----------------------------------------------------------------------
// Figure 3 — PF accuracy floor vs system size.
// Paper scale: 3D torus and hypercube up to 2^15 nodes; here one
// representative cell per topology family at 2^9 nodes (scale with
// -benchtime or run cmd/figures -fig 3 -scale 5 for the full sweep).
// ----------------------------------------------------------------------

func BenchmarkFig3PFAccuracyHypercube(b *testing.B) {
	benchAccuracy(b, experiments.PushFlow, experiments.HypercubeTopo)
}

func BenchmarkFig3PFAccuracyTorus3D(b *testing.B) {
	benchAccuracy(b, experiments.PushFlow, experiments.Torus3D)
}

// ----------------------------------------------------------------------
// Figure 6 — PCF accuracy floor vs system size (same grid as Fig. 3).
// ----------------------------------------------------------------------

func BenchmarkFig6PCFAccuracyHypercube(b *testing.B) {
	benchAccuracy(b, experiments.PCF, experiments.HypercubeTopo)
}

func BenchmarkFig6PCFAccuracyTorus3D(b *testing.B) {
	benchAccuracy(b, experiments.PCF, experiments.Torus3D)
}

func benchAccuracy(b *testing.B, algo experiments.Algorithm, kind experiments.TopologyKind) {
	var floor float64
	for i := 0; i < b.N; i++ {
		p := experiments.AccuracySingle(algo, kind, gossip.Average, 3, 1) // 512 nodes
		floor = p.FloorMaxErr
	}
	// Report as correct decimal digits so the value survives the
	// benchmark output format (−log10 of the maximal local error).
	b.ReportMetric(-math.Log10(floor), "accuracy-digits")
}

// ----------------------------------------------------------------------
// Figure 4 — PF, single permanent link failure at iteration 75/175 on a
// 6D hypercube: the fall-back factor is the figure's message.
// ----------------------------------------------------------------------

func BenchmarkFig4PFLinkFailure(b *testing.B) {
	benchFailure(b, experiments.PushFlow)
}

// ----------------------------------------------------------------------
// Figure 7 — PCF, identical setup and schedule: no fall-back.
// ----------------------------------------------------------------------

func BenchmarkFig7PCFLinkFailure(b *testing.B) {
	benchFailure(b, experiments.PCF)
}

func benchFailure(b *testing.B, algo experiments.Algorithm) {
	var fallback float64
	for i := 0; i < b.N; i++ {
		res := experiments.Failure(experiments.DefaultFailureConfig(algo, 175))
		fallback = res.Fallback
	}
	b.ReportMetric(fallback, "fallback-factor")
}

// ----------------------------------------------------------------------
// Figure 8 — dmGS factorization error on a failure-free hypercube.
// Paper scale: N = 2^5..2^10, m = 16, 50 runs; here one run at N = 2^5
// per iteration (full sweep: cmd/qrbench -maxdim 10 -runs 50).
// ----------------------------------------------------------------------

func BenchmarkFig8DmGSPF(b *testing.B) {
	benchQR(b, experiments.PushFlow)
}

func BenchmarkFig8DmGSPCF(b *testing.B) {
	benchQR(b, experiments.PCF)
}

func benchQR(b *testing.B, algo experiments.Algorithm) {
	var factErr float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultQRConfig(algo, 5, 1)
		p, err := experiments.QRSingle(cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
		factErr = p.FactErrMean
	}
	b.ReportMetric(-math.Log10(factErr), "fact-accuracy-digits")
}

// ----------------------------------------------------------------------
// Ablation benches (EXP-B, EXP-C): scaling and failure-free overhead.
// ----------------------------------------------------------------------

// BenchmarkExpBRoundsToEps reports the rounds a PCF reduction needs to
// reach 1e-9 on a 1024-node hypercube (the O(log n + log 1/ε) claim).
func BenchmarkExpBRoundsToEps(b *testing.B) {
	g := topology.Hypercube(10)
	inputs := experiments.UniformInputs(g.N(), 1)
	var rounds int
	for i := 0; i < b.N; i++ {
		e := sim.NewScalar(g, experiments.PCF.Protos(g.N()), inputs, gossip.Average, int64(i))
		res := e.Run(sim.RunConfig{MaxRounds: 5000, Eps: 1e-9})
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkExpCFailureFreeOverhead compares one full PF round and one
// full PCF round on the same 64-node hypercube — the "computational
// efficiency fully preserved" claim in wall-clock terms.
func BenchmarkExpCFailureFreeOverheadPF(b *testing.B) {
	benchRounds(b, func() gossip.Protocol { return pushflow.New() })
}

func BenchmarkExpCFailureFreeOverheadPCF(b *testing.B) {
	benchRounds(b, func() gossip.Protocol { return core.NewEfficient() })
}

func BenchmarkExpCFailureFreeOverheadPCFRobust(b *testing.B) {
	benchRounds(b, func() gossip.Protocol { return core.NewRobust() })
}

func BenchmarkExpCFailureFreeOverheadPushSum(b *testing.B) {
	benchRounds(b, func() gossip.Protocol { return pushsum.New() })
}

func benchRounds(b *testing.B, mk func() gossip.Protocol) {
	g := topology.Hypercube(6)
	inputs := experiments.UniformInputs(g.N(), 1)
	protos := make([]gossip.Protocol, g.N())
	for i := range protos {
		protos[i] = mk()
	}
	e := sim.NewScalar(g, protos, inputs, gossip.Average, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// ----------------------------------------------------------------------
// Protocol microbenchmarks: one send + one receive on a warm node.
// ----------------------------------------------------------------------

func benchExchange(b *testing.B, mk func() gossip.Protocol) {
	a, c := mk(), mk()
	a.Reset(0, []int32{1}, gossip.Scalar(8, 1))
	c.Reset(1, []int32{0}, gossip.Scalar(2, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Receive(a.MakeMessage(1))
		a.Receive(c.MakeMessage(0))
	}
}

func BenchmarkExchangePushSum(b *testing.B) {
	benchExchange(b, func() gossip.Protocol { return pushsum.New() })
}

func BenchmarkExchangePushFlow(b *testing.B) {
	benchExchange(b, func() gossip.Protocol { return pushflow.New() })
}

func BenchmarkExchangePCF(b *testing.B) {
	benchExchange(b, func() gossip.Protocol { return core.NewEfficient() })
}

func BenchmarkExchangePCFRobust(b *testing.B) {
	benchExchange(b, func() gossip.Protocol { return core.NewRobust() })
}

// Vector payloads (width 16, the dmGS case).
func BenchmarkExchangePCFVector16(b *testing.B) {
	a, c := core.NewEfficient(), core.NewEfficient()
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = float64(i)
	}
	a.Reset(0, []int32{1}, gossip.Vector(xs, 1))
	c.Reset(1, []int32{0}, gossip.Vector(xs, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Receive(a.MakeMessage(1))
		a.Receive(c.MakeMessage(0))
	}
}

// BenchmarkEventEngine measures the continuous-time engine's event
// throughput (activations + deliveries per op) on a 64-node hypercube.
func BenchmarkEventEngine(b *testing.B) {
	g := topology.Hypercube(6)
	inputs := experiments.UniformInputs(g.N(), 1)
	init := make([]gossip.Value, g.N())
	for i, x := range inputs {
		init[i] = gossip.Scalar(x, 1)
	}
	protos := experiments.PCF.Protos(g.N())
	e := sim.NewEvent(g, protos, init, sim.EventConfig{
		MeanInterval: 1, IntervalJitter: 0.5, LatencyMin: 0.05, LatencyMax: 0.2, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(float64(i+1), 0) // one mean interval per op: ~64 activations
	}
}

// Ablation bench: the two PCF variants' estimate cost — the robust
// variant recomputes v − ϕ − Σf per estimate while the efficient one
// reads v − ϕ (DESIGN.md; paper Sec. III-A trade-off).
func BenchmarkEstimateEfficient(b *testing.B) {
	benchEstimate(b, core.NewEfficient())
}

func BenchmarkEstimateRobust(b *testing.B) {
	benchEstimate(b, core.NewRobust())
}

func benchEstimate(b *testing.B, n *core.Node) {
	neighbors := []int32{1, 2, 3, 4, 5, 6}
	n.Reset(0, neighbors, gossip.Scalar(8, 1))
	for _, j := range neighbors {
		n.MakeMessage(int(j))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Estimate()
	}
}
